//! The long-running "what-if" sweep service: a persistent worker pool plus
//! an in-process request registry, serving concurrent [`SweepRequest`]s.
//!
//! This is the serving half of the ROADMAP's sharded what-if item (the
//! memoization half is [`crate::cache`]). One [`Service`] owns:
//!
//! * **A persistent work-stealing pool** — the same Chase–Lev machinery the
//!   scoped [`crate::runner::SweepRunner`] uses (shared
//!   [`Injector`], per-worker deques, sibling stealing), but with workers
//!   that outlive any one request, parking on a condvar when the queue
//!   runs dry. Jobs from every live request flow through the one shared
//!   FIFO injector.
//! * **Fair interleaving** — each request keeps at most `threads` jobs in
//!   the pool at once (its *window*); completing a job refills the next
//!   pending one at the injector's tail. A long request therefore owns at
//!   most a window's worth of queue at any instant, and a short request
//!   submitted behind it starts within one job-completion, not after the
//!   long sweep drains — the head-of-line guarantee the concurrency tests
//!   pin down.
//! * **The cache fast path** — submissions are pre-scanned against the
//!   shared [`ResultCache`]; hits are written straight into their result
//!   slot and never touch the pool. An all-hit request finalizes inline at
//!   submit. Misses append to a per-request WAL segment that commits into
//!   the same index the CLI uses, so server and CLI stay mutually
//!   incremental.
//! * **A metadata plane** — every request gets an id and a
//!   [`SweepStatus`] lifecycle (queued → running(n/m) → done / failed /
//!   cancelled) queryable via [`Service::status`] / [`Service::list`],
//!   cancellable via [`Service::cancel`], awaitable via [`Service::wait`].
//!   Identical in-flight requests are deduplicated: the second submit
//!   returns the first's id instead of doubling the work.
//!
//! Results are bit-identical to the CLI path by construction: the same
//! slot-indexed write-once buffers, the same task-major/point-major/
//! seed-minor slot layout, the same aggregation — and the artifact is
//! rendered once, server-side, with [`SweepSuite::artifact_json`] and
//! shipped as text verbatim.
//!
//! Memory ordering of finalization: each worker publishes its slot writes
//! with an `AcqRel` `fetch_sub` on the request's `remaining` counter; the
//! thread that observes the count hit zero acquires every decrement in the
//! release sequence, so all slot writes happen-before the finalizer's
//! [`SlotBuffer::take_vec`]. The submit-time cache-hit writes are ordered
//! before any worker runs via the injector push (release) → steal
//! (acquire) chain, inductively through refills.

use crate::cache::{self, CacheKey, CacheStats, CacheWriter, ResultCache};
use crate::cost::CostTable;
use crate::error::Error;
use crate::metrics::Metrics;
use crate::params::Params;
use crate::registry::Registry;
use crate::request::{SweepRequest, SweepResponse, SweepStatus, ValidatedSweep};
use crate::runner::{
    aggregate_results, expand_jobs, sort_jobs_lpt, Job, JobFailure, JobOrder, SlotBuffer,
    SweepError, SweepResult, SweepSuite,
};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use des::Simulation;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// How a [`Service`] is provisioned.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Pool worker threads (also each request's in-flight window).
    pub threads: usize,
    /// Attach the persistent result cache at this directory.
    pub cache_dir: Option<PathBuf>,
    /// Prior wall-clock measurements driving the LPT job order.
    pub cost_table: CostTable,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::new()
    }
}

impl ServiceConfig {
    pub fn new() -> ServiceConfig {
        ServiceConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            cache_dir: None,
            cost_table: CostTable::new(),
        }
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    pub fn with_cost_table(mut self, table: CostTable) -> Self {
        self.cost_table = table;
        self
    }
}

/// What [`Service::submit`] hands back: the request's id and initial
/// status, plus submission-time observability the CLI prints.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Submission {
    pub id: u64,
    pub status: SweepStatus,
    /// Lenient-mode axis warnings from validation, one line per scenario.
    pub warnings: Vec<String>,
    /// Total `(scenario, point, seed)` jobs (cache hits included).
    pub total_jobs: usize,
    /// Jobs served from the cache at submit, before the pool saw anything.
    pub cache_hits: usize,
    /// True when this submit matched an identical in-flight request and
    /// was coalesced onto its id instead of spawning duplicate work.
    pub deduped: bool,
}

/// Terminal (or not-yet-terminal) state of one request.
enum Terminal {
    Pending,
    Done {
        artifact: String,
        results: Vec<SweepResult>,
    },
    Failed {
        message: String,
    },
    Cancelled,
}

/// One submitted request's full execution state.
struct ActiveSweep {
    id: u64,
    /// Scenario names, resolved again via the service registry at run time.
    names: Vec<String>,
    /// Expanded parameter points, per task.
    points: Vec<Vec<Params>>,
    seeds: Vec<u64>,
    /// Write-once result slots (task-major, point-major, seed-minor).
    slots: SlotBuffer<Metrics>,
    /// Per-slot cache keys — `Some` exactly for the slots that missed.
    keys: Vec<Option<CacheKey>>,
    total_jobs: usize,
    cache_hits: usize,
    /// Cost-ordered jobs not yet handed to the injector (the part of the
    /// sweep beyond the in-flight window).
    pending: Mutex<VecDeque<Job>>,
    /// Pool jobs not yet completed or skipped. Hitting zero triggers
    /// finalization by whichever thread got there.
    remaining: AtomicUsize,
    /// Pool jobs that have begun executing (drives queued → running).
    started: AtomicUsize,
    cancelled: AtomicBool,
    failures: Mutex<Vec<JobFailure>>,
    /// This request's append-only WAL segment (all workers share it; a
    /// sweep is one commit unit, unlike the CLI's per-worker segments).
    writer: Mutex<Option<CacheWriter>>,
    state: Mutex<Terminal>,
    done_cond: Condvar,
    /// Canonical request text, for in-flight deduplication.
    dedup_key: String,
}

impl ActiveSweep {
    fn status(&self) -> SweepStatus {
        match &*self.state.lock().unwrap() {
            Terminal::Done { .. } => SweepStatus::Done,
            Terminal::Failed { message } => SweepStatus::Failed {
                message: message.clone(),
            },
            Terminal::Cancelled => SweepStatus::Cancelled,
            Terminal::Pending => {
                if self.started.load(Ordering::Relaxed) == 0 {
                    SweepStatus::Queued
                } else {
                    let remaining = self.remaining.load(Ordering::Relaxed);
                    SweepStatus::Running {
                        done: self.total_jobs - remaining,
                        total: self.total_jobs,
                    }
                }
            }
        }
    }

    fn response(&self, include_artifact: bool) -> SweepResponse {
        let state = self.state.lock().unwrap();
        let (status, artifact) = match &*state {
            Terminal::Done { artifact, .. } => (
                SweepStatus::Done,
                include_artifact.then(|| artifact.clone()),
            ),
            _ => {
                drop(state);
                (self.status(), None)
            }
        };
        SweepResponse {
            id: self.id,
            status,
            artifact,
        }
    }
}

/// One unit of pool work: which sweep, which job.
struct PoolJob {
    sweep: Arc<ActiveSweep>,
    job: Job,
}

struct Inner {
    registry: Registry,
    threads: usize,
    injector: Injector<PoolJob>,
    /// Worker parking. The mutex guards no data — it sequences the
    /// "check queue, then wait" window against "push, then notify".
    park: (Mutex<()>, Condvar),
    shutdown: AtomicBool,
    requests: Mutex<HashMap<u64, Arc<ActiveSweep>>>,
    /// Submission order of request ids (HashMap iteration is unordered).
    order: Mutex<Vec<u64>>,
    next_id: AtomicU64,
    cache: Option<Mutex<ResultCache>>,
    /// Prior costs from config — never mutated, the cold-start estimate.
    priors: CostTable,
    /// Costs measured by this service's own jobs; preferred over priors,
    /// so ordering gets smarter the longer the service runs (warm state).
    observed: Mutex<CostTable>,
    /// Canonical request text → in-flight request id.
    dedup: Mutex<HashMap<String, u64>>,
}

impl Inner {
    fn estimate(&self, scenario: &str, params: &Params) -> f64 {
        let key = CostTable::key(scenario, params);
        self.observed
            .lock()
            .unwrap()
            .mean_secs(&key)
            .unwrap_or_else(|| self.priors.estimate(scenario, params))
    }

    /// Push one job and wake a worker. Locking the park mutex (empty as it
    /// is) before notifying closes the lost-wakeup window against a worker
    /// that just found the queue dry and is about to wait.
    fn inject(&self, pool_job: PoolJob) {
        self.injector.push(pool_job);
        let _guard = self.park.0.lock().unwrap();
        self.park.1.notify_one();
    }
}

/// The long-running sweep service. See the module docs for the design.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Provision the pool (threads spawn immediately and park) and open
    /// the cache, if configured.
    pub fn start(registry: Registry, config: ServiceConfig) -> Result<Service, Error> {
        let cache = match &config.cache_dir {
            Some(dir) => Some(Mutex::new(ResultCache::open(dir)?)),
            None => None,
        };
        let threads = config.threads.max(1);
        let inner = Arc::new(Inner {
            registry,
            threads,
            injector: Injector::new(),
            park: (Mutex::new(()), Condvar::new()),
            shutdown: AtomicBool::new(false),
            requests: Mutex::new(HashMap::new()),
            order: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            cache,
            priors: config.cost_table,
            observed: Mutex::new(CostTable::new()),
            dedup: Mutex::new(HashMap::new()),
        });

        let locals: Vec<Worker<PoolJob>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Arc<Vec<Stealer<PoolJob>>> =
            Arc::new(locals.iter().map(Worker::stealer).collect());
        let workers = locals
            .into_iter()
            .map(|local| {
                let inner = Arc::clone(&inner);
                let stealers = Arc::clone(&stealers);
                std::thread::spawn(move || worker_loop(&inner, local, &stealers))
            })
            .collect();
        Ok(Service { inner, workers })
    }

    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    pub fn thread_count(&self) -> usize {
        self.inner.threads
    }

    /// Validate and enqueue one request; returns immediately with its id.
    /// Cache hits are resolved inline (an all-hit request comes back
    /// already `Done`); identical in-flight requests are coalesced.
    pub fn submit(&self, request: &SweepRequest) -> Result<Submission, Error> {
        let inner = &*self.inner;
        let validated = request.validate(&inner.registry)?;
        let dedup_key =
            serde_json::to_string(&request.to_value()).expect("value-tree rendering is infallible");

        // In-flight dedup: the map only ever holds non-terminal requests
        // (finalization removes the entry), so a match means live work we
        // can share rather than repeat. Holding the lock across the check
        // prevents two racing identical submits from both missing.
        {
            let dedup = inner.dedup.lock().unwrap();
            if let Some(&id) = dedup.get(&dedup_key) {
                if let Some(sweep) = inner.requests.lock().unwrap().get(&id) {
                    return Ok(Submission {
                        id,
                        status: sweep.status(),
                        warnings: validated.warnings,
                        total_jobs: sweep.total_jobs,
                        cache_hits: sweep.cache_hits,
                        deduped: true,
                    });
                }
            }
        }

        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let sweep = self.build_sweep(id, &validated, dedup_key)?;
        let status = sweep.status();
        let cache_hits = sweep.cache_hits;
        let total_jobs = sweep.total_jobs;
        let terminal = status.is_terminal();

        inner
            .requests
            .lock()
            .unwrap()
            .insert(id, Arc::clone(&sweep));
        inner.order.lock().unwrap().push(id);
        if !terminal {
            inner
                .dedup
                .lock()
                .unwrap()
                .insert(sweep.dedup_key.clone(), id);
            // Open the request's window: the first `threads` jobs go into
            // the shared FIFO; the rest follow one-per-completion.
            let window: Vec<Job> = {
                let mut pending = sweep.pending.lock().unwrap();
                (0..inner.threads.min(pending.len()))
                    .filter_map(|_| pending.pop_front())
                    .collect()
            };
            for job in window {
                inner.inject(PoolJob {
                    sweep: Arc::clone(&sweep),
                    job,
                });
            }
        }
        Ok(Submission {
            id,
            status,
            warnings: validated.warnings,
            total_jobs,
            cache_hits,
            deduped: false,
        })
    }

    /// Expand, pre-scan the cache, and cost-order one validated request.
    fn build_sweep(
        &self,
        id: u64,
        validated: &ValidatedSweep,
        dedup_key: String,
    ) -> Result<Arc<ActiveSweep>, Error> {
        let inner = &*self.inner;
        let names: Vec<String> = validated.tasks.iter().map(|(n, _)| n.clone()).collect();
        let points: Vec<Vec<Params>> = validated
            .tasks
            .iter()
            .map(|(name, grid)| {
                let scenario = inner
                    .registry
                    .get(name)
                    .expect("validated scenario vanished from the registry");
                grid.points(&scenario.default_params())
            })
            .collect();
        let mut jobs = expand_jobs(&points, validated.seeds.len());
        let n_jobs = jobs.len();
        let slots = SlotBuffer::new(n_jobs);
        let mut keys: Vec<Option<CacheKey>> = vec![None; n_jobs];

        // Cache pre-scan, same contract as the runner's: hits land in
        // their slots here on the submit thread (no worker exists for this
        // sweep yet) and never reach the pool.
        let mut cache_hits = 0;
        if let Some(cache) = &inner.cache {
            let mut cache = cache.lock().unwrap();
            let mut misses = Vec::with_capacity(jobs.len());
            for job in jobs {
                let key = cache::job_key(
                    cache.salt(),
                    &names[job.task],
                    &points[job.task][job.point],
                    validated.seeds[job.seed_idx],
                );
                match cache.lookup(&key) {
                    // SAFETY: submit thread only, one visit per slot, and
                    // hit slots are never handed to the pool.
                    Some(metrics) => {
                        unsafe { slots.put(job.slot, metrics) };
                        cache_hits += 1;
                    }
                    None => {
                        keys[job.slot] = Some(key);
                        misses.push(job);
                    }
                }
            }
            jobs = misses;
        }

        if validated.order == JobOrder::Cost {
            let estimates: Vec<Vec<f64>> = names
                .iter()
                .zip(&points)
                .map(|(name, pts)| pts.iter().map(|p| inner.estimate(name, p)).collect())
                .collect();
            sort_jobs_lpt(&mut jobs, &estimates);
        }

        let writer = match (&inner.cache, jobs.is_empty()) {
            (Some(cache), false) => Some(cache.lock().unwrap().writer()?),
            _ => None,
        };

        let sweep = Arc::new(ActiveSweep {
            id,
            names,
            points,
            seeds: validated.seeds.clone(),
            slots,
            keys,
            total_jobs: n_jobs,
            cache_hits,
            remaining: AtomicUsize::new(jobs.len()),
            started: AtomicUsize::new(0),
            pending: Mutex::new(jobs.into()),
            cancelled: AtomicBool::new(false),
            failures: Mutex::new(Vec::new()),
            writer: Mutex::new(writer),
            state: Mutex::new(Terminal::Pending),
            done_cond: Condvar::new(),
            dedup_key,
        });
        if sweep.remaining.load(Ordering::Relaxed) == 0 {
            // Every job was a cache hit: finalize inline, entirely on the
            // submit thread — the pool never hears about this request.
            finalize(inner, &sweep);
        }
        Ok(sweep)
    }

    fn get(&self, id: u64) -> Result<Arc<ActiveSweep>, Error> {
        self.inner
            .requests
            .lock()
            .unwrap()
            .get(&id)
            .cloned()
            .ok_or(Error::UnknownRequest { id })
    }

    /// Current lifecycle of one request (no artifact — use `wait`).
    pub fn status(&self, id: u64) -> Result<SweepResponse, Error> {
        Ok(self.get(id)?.response(false))
    }

    /// Every request this service has seen, in submission order.
    pub fn list(&self) -> Vec<SweepResponse> {
        let requests = self.inner.requests.lock().unwrap();
        self.inner
            .order
            .lock()
            .unwrap()
            .iter()
            .filter_map(|id| requests.get(id))
            .map(|sweep| sweep.response(false))
            .collect()
    }

    /// Block until the request reaches a terminal state; `Done` responses
    /// carry the artifact text.
    pub fn wait(&self, id: u64) -> Result<SweepResponse, Error> {
        let sweep = self.get(id)?;
        let mut state = sweep.state.lock().unwrap();
        while matches!(*state, Terminal::Pending) {
            state = sweep.done_cond.wait(state).unwrap();
        }
        drop(state);
        Ok(sweep.response(true))
    }

    /// Cancel a request: pending jobs are dropped immediately, in-flight
    /// jobs are skipped as workers reach them. Terminal requests are
    /// unaffected (the current status comes back).
    pub fn cancel(&self, id: u64) -> Result<SweepResponse, Error> {
        let sweep = self.get(id)?;
        sweep.cancelled.store(true, Ordering::Release);
        let drained = {
            let mut pending = sweep.pending.lock().unwrap();
            let n = pending.len();
            pending.clear();
            n
        };
        if drained > 0 && sweep.remaining.fetch_sub(drained, Ordering::AcqRel) == drained {
            // The drain took the count to zero: no worker holds a job of
            // this sweep anymore, so finalization falls to us.
            finalize(&self.inner, &sweep);
        }
        Ok(sweep.response(false))
    }

    /// The aggregated per-scenario results of a `Done` request — what the
    /// CLI renders as summary tables. Errors on non-terminal, failed, or
    /// cancelled requests (their outcome is in `status`, not here).
    pub fn results(&self, id: u64) -> Result<Vec<SweepResult>, Error> {
        let sweep = self.get(id)?;
        let state = sweep.state.lock().unwrap();
        match &*state {
            Terminal::Done { results, .. } => Ok(results.clone()),
            Terminal::Cancelled => Err(Error::Cancelled { id }),
            Terminal::Failed { message } => Err(Error::RequestFailed {
                id,
                message: message.clone(),
            }),
            Terminal::Pending => Err(Error::RequestFailed {
                id,
                message: "request has no results yet (not terminal)".to_string(),
            }),
        }
    }

    /// Hit/miss/size counters of the shared cache, if one is attached.
    /// Counters accumulate across every request this service served.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache.as_ref().map(|c| c.lock().unwrap().stats())
    }

    /// Wall-clocks measured by this service's own jobs — the `--costs-out`
    /// table, same keying as [`crate::runner::SweepRunner::observed_costs`].
    pub fn observed_costs(&self) -> CostTable {
        self.inner.observed.lock().unwrap().clone()
    }

    /// Stop accepting work and join the pool. In-flight and pending jobs
    /// are drained first (cancel requests beforehand for a fast exit).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.inner.park.0.lock().unwrap();
            self.inner.park.1.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

/// The persistent pool thread: the canonical crossbeam find-task loop
/// (local deque, then an injector batch, then sibling stealing), parking
/// on the service condvar when everything is dry.
fn worker_loop(inner: &Inner, local: Worker<PoolJob>, stealers: &[Stealer<PoolJob>]) {
    loop {
        let find_task = || {
            local.pop().or_else(|| {
                std::iter::repeat_with(|| {
                    inner
                        .injector
                        .steal_batch_and_pop(&local)
                        .or_else(|| stealers.iter().map(Stealer::steal).collect())
                })
                .find(|s: &Steal<PoolJob>| !s.is_retry())
                .and_then(Steal::success)
            })
        };
        match find_task() {
            Some(PoolJob { sweep, job }) => run_job(inner, &sweep, job),
            None => {
                let guard = inner.park.0.lock().unwrap();
                // Re-check under the lock: a pusher notifies holding it,
                // so work pushed since find_task can't slip past us.
                if !inner.injector.is_empty() {
                    continue;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Park until a submit/refill wakes us.
                drop(inner.park.1.wait(guard).unwrap());
            }
        }
    }
}

/// Execute (or, when cancelled, skip) one job, refill the request's
/// window, and finalize if this was the sweep's last outstanding job.
fn run_job(inner: &Inner, sweep: &Arc<ActiveSweep>, job: Job) {
    if !sweep.cancelled.load(Ordering::Acquire) {
        sweep.started.fetch_add(1, Ordering::Relaxed);
        let scenario = inner
            .registry
            .get(&sweep.names[job.task])
            .expect("validated scenario vanished from the registry");
        let params = &sweep.points[job.task][job.point];
        let seed = sweep.seeds[job.seed_idx];
        let started = Instant::now();
        // Same per-job panic isolation as the runner: a panicking scenario
        // fails its request, never the pool.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut sim = Simulation::new(seed);
            scenario.run(&mut sim, params)
        }));
        match outcome {
            Ok(metrics) => {
                let elapsed = started.elapsed().as_secs_f64();
                inner
                    .observed
                    .lock()
                    .unwrap()
                    .record(&CostTable::key(scenario.name(), params), elapsed);
                let writer = sweep.writer.lock().unwrap();
                if let Some(writer) = writer.as_ref() {
                    let key = sweep.keys[job.slot].expect("every pool job missed the cache");
                    if let Err(e) = writer.append(&key, scenario.name(), elapsed, &metrics) {
                        sweep.failures.lock().unwrap().push(JobFailure {
                            scenario: scenario.name().to_string(),
                            point: params.label(),
                            seed,
                            message: format!("cache write failed: {e}"),
                        });
                    }
                }
                drop(writer);
                // SAFETY: the deque delivered this job to exactly this
                // worker, `job.slot` is unique per job, and the AcqRel
                // fetch_sub below releases this write to the finalizer.
                unsafe { sweep.slots.put(job.slot, metrics) };
            }
            Err(payload) => sweep.failures.lock().unwrap().push(JobFailure {
                scenario: scenario.name().to_string(),
                point: params.label(),
                seed,
                message: crate::runner::panic_message(payload.as_ref()),
            }),
        }
    }

    // Refill the window: this request may put its next pending job at the
    // injector's tail — behind anything other requests queued meanwhile,
    // which is exactly the interleaving fairness we want.
    let next = sweep.pending.lock().unwrap().pop_front();
    if let Some(next_job) = next {
        inner.inject(PoolJob {
            sweep: Arc::clone(sweep),
            job: next_job,
        });
    }

    if sweep.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        finalize(inner, sweep);
    }
}

/// Turn a fully-drained sweep into its terminal state: aggregate and
/// render on success, report failures verbatim, commit the WAL segment.
/// Called exactly once per request — by the last decrementer of
/// `remaining` (a worker, the canceller, or the submit thread for all-hit
/// requests).
fn finalize(inner: &Inner, sweep: &ActiveSweep) {
    let failures = std::mem::take(&mut *sweep.failures.lock().unwrap());
    let terminal = if sweep.cancelled.load(Ordering::Acquire) {
        // The WAL segment is deliberately not committed: whatever misses
        // did complete stay on disk and are recovered at the next cache
        // open, same as the runner's failure path.
        Terminal::Cancelled
    } else if !failures.is_empty() {
        let mut failures = failures;
        failures
            .sort_by(|a, b| (&a.scenario, &a.point, a.seed).cmp(&(&b.scenario, &b.point, b.seed)));
        Terminal::Failed {
            message: SweepError { failures }.to_string(),
        }
    } else {
        // SAFETY: remaining hit zero and we are its observer — every slot
        // write (workers' puts via the AcqRel release sequence, submit-time
        // hit puts via the injector push/steal chain or, for all-hit
        // sweeps, program order) happens-before this drain.
        let slot_values = unsafe { sweep.slots.take_vec() };
        let names: Vec<&str> = sweep.names.iter().map(String::as_str).collect();
        let results = aggregate_results(&names, sweep.points.clone(), &sweep.seeds, slot_values);
        let suite = SweepSuite {
            seeds: sweep.seeds.clone(),
            results,
        };
        let artifact = suite.artifact_json();
        let results = suite.results;
        match (&inner.cache, sweep.writer.lock().unwrap().take()) {
            (Some(cache), Some(writer)) => {
                match cache.lock().unwrap().commit(vec![writer]) {
                    Ok(()) => Terminal::Done { artifact, results },
                    // A cache that can't commit is a real failure (a warm
                    // CI run silently degrading to 0% hits must not pass),
                    // but it must fail the request, not the pool thread.
                    Err(e) => Terminal::Failed {
                        message: format!("sweep cache commit failed: {e}"),
                    },
                }
            }
            _ => Terminal::Done { artifact, results },
        }
    };

    *sweep.state.lock().unwrap() = terminal;
    sweep.done_cond.notify_all();
    inner.dedup.lock().unwrap().remove(&sweep.dedup_key);
}
