//! The scenario registry: every figure/table experiment under one roof.

use crate::scenarios as s;
use crate::Scenario;

/// Ordered collection of registered scenarios (registration order is the
/// `--all` execution and JSON emission order).
#[derive(Default)]
pub struct Registry {
    items: Vec<Box<dyn Scenario>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a scenario. Names must be unique.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) {
        assert!(
            self.get(scenario.name()).is_none(),
            "duplicate scenario name: {}",
            scenario.name()
        );
        self.items.push(scenario);
    }

    /// Every experiment the repository reproduces: the 11 figure/table
    /// scenarios plus the design-choice ablations.
    pub fn standard() -> Self {
        let mut r = Registry::new();
        r.register(Box::new(s::fig01::Fig01Utilization));
        r.register(Box::new(s::fig07::Fig07Latency));
        r.register(Box::new(s::fig08::Fig08Io));
        r.register(Box::new(s::fig09::Fig09CpuSharing));
        r.register(Box::new(s::fig10::Fig10Utilization));
        r.register(Box::new(s::fig11::Fig11MemorySharing));
        r.register(Box::new(s::fig12::Fig12GpuSharing));
        r.register(Box::new(s::fig13::Fig13Offload));
        r.register(Box::new(s::tab02::Tab02Containers));
        r.register(Box::new(s::tab03::Tab03IdleNode));
        r.register(Box::new(s::ablations::Ablations));
        r
    }

    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.items
            .iter()
            .find(|s| s.name() == name)
            .map(|b| b.as_ref())
    }

    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.items.iter().map(|b| b.as_ref())
    }

    pub fn names(&self) -> Vec<&'static str> {
        self.items.iter().map(|s| s.name()).collect()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Print the paper-style report of one scenario (legacy binary path).
    /// Returns `false` if the name is unknown.
    #[must_use]
    pub fn report(&self, name: &str) -> bool {
        match self.get(name) {
            Some(s) => {
                s.report();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_is_complete_and_unique() {
        let r = Registry::standard();
        assert_eq!(
            r.len(),
            11,
            "10 fig/tab scenarios + ablations: {:?}",
            r.names()
        );
        let names = r.names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names unique");
        for expected in [
            "fig01_utilization",
            "fig07_latency",
            "fig08_io",
            "fig09_cpu_sharing",
            "fig10_utilization",
            "fig11_memory_sharing",
            "fig12_gpu_sharing",
            "fig13_offload",
            "tab02_containers",
            "tab03_idle_node",
            "ablations",
        ] {
            assert!(r.get(expected).is_some(), "missing scenario {expected}");
        }
    }

    #[test]
    fn unknown_name_reports_false() {
        assert!(!Registry::standard().report("no_such_scenario"));
    }
}
