//! Declarative scenario parameters and cartesian sweep grids.
//!
//! A [`Params`] is an ordered, serde-serializable map of named values; every
//! scenario documents its defaults via [`crate::Scenario::default_params`]
//! and reads tunables back with the typed getters. A [`SweepGrid`] expands
//! named axes into the cartesian product of parameter points, in a fixed
//! deterministic order so sweep output is reproducible run to run.

use serde::{Serialize, Value};
use std::fmt;

/// One parameter value. Scenario tunables are scalars by design — grids stay
/// declarative and JSON output stays flat.
#[derive(Debug, Clone)]
pub enum ParamValue {
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
}

/// Equality is **bit-exact** for floats (`to_bits`, not `==`): the sweep
/// result cache hashes params by their bit patterns, and two `Params` that
/// compare equal must always canonicalize — label, hash, cache key —
/// identically. IEEE `==` would break that both ways: `0.0 == -0.0` but
/// they format (and hash) differently, and `NaN != NaN` although they are
/// the same stored value.
impl PartialEq for ParamValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ParamValue::Bool(a), ParamValue::Bool(b)) => a == b,
            (ParamValue::U64(a), ParamValue::U64(b)) => a == b,
            (ParamValue::F64(a), ParamValue::F64(b)) => a.to_bits() == b.to_bits(),
            (ParamValue::Str(a), ParamValue::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for ParamValue {}

impl ParamValue {
    /// Parse a CLI-style literal: `true`/`false`, integer, float, else string.
    pub fn parse(s: &str) -> ParamValue {
        match s {
            "true" => ParamValue::Bool(true),
            "false" => ParamValue::Bool(false),
            _ => {
                if let Ok(n) = s.parse::<u64>() {
                    ParamValue::U64(n)
                } else if let Ok(x) = s.parse::<f64>() {
                    ParamValue::F64(x)
                } else {
                    ParamValue::Str(s.to_string())
                }
            }
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::U64(n) => write!(f, "{n}"),
            ParamValue::F64(x) => write!(f, "{x}"),
            ParamValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl Serialize for ParamValue {
    fn to_value(&self) -> Value {
        match self {
            ParamValue::Bool(b) => Value::Bool(*b),
            ParamValue::U64(n) => Value::U64(*n),
            ParamValue::F64(x) => Value::F64(*x),
            ParamValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::U64(v)
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::U64(v as u64)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::F64(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// Ordered name → value map. Insertion order is preserved (it drives table
/// and JSON field order); setting an existing name replaces in place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    entries: Vec<(String, ParamValue)>,
}

impl Params {
    pub fn new() -> Self {
        Params::default()
    }

    /// Builder-style insert.
    pub fn with(mut self, name: &str, value: impl Into<ParamValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Insert or replace, preserving first-insertion order.
    pub fn set(&mut self, name: &str, value: impl Into<ParamValue>) {
        let value = value.into();
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 = value;
        } else {
            self.entries.push((name.to_string(), value));
        }
    }

    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Numeric getter with default; accepts U64 or F64 entries.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        match self.get(name) {
            Some(ParamValue::F64(x)) => *x,
            Some(ParamValue::U64(n)) => *n as f64,
            _ => default,
        }
    }

    /// Integer getter with default; accepts U64 or integral F64 entries.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        match self.get(name) {
            Some(ParamValue::U64(n)) => *n,
            Some(ParamValue::F64(x)) if *x >= 0.0 && x.fract() == 0.0 => *x as u64,
            _ => default,
        }
    }

    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.u64(name, default as u64) as usize
    }

    pub fn bool(&self, name: &str, default: bool) -> bool {
        match self.get(name) {
            Some(ParamValue::Bool(b)) => *b,
            _ => default,
        }
    }

    pub fn str(&self, name: &str, default: &str) -> String {
        match self.get(name) {
            Some(ParamValue::Str(s)) => s.clone(),
            Some(v) => v.to_string(),
            None => default.to_string(),
        }
    }

    /// Compact `k=v k=v` rendering for progress lines.
    pub fn label(&self) -> String {
        if self.entries.is_empty() {
            return "default".to_string();
        }
        self.entries
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl Serialize for Params {
    fn to_value(&self) -> Value {
        Value::Map(
            self.entries
                .iter()
                .map(|(n, v)| (n.clone(), v.to_value()))
                .collect(),
        )
    }
}

/// A cartesian sweep: named axes, each with a list of values. Expanding the
/// grid against a base `Params` yields one point per combination, with the
/// last-added axis varying fastest (row-major order).
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    axes: Vec<(String, Vec<ParamValue>)>,
}

impl SweepGrid {
    pub fn new() -> Self {
        SweepGrid::default()
    }

    /// Builder-style axis. An axis with no values is ignored; re-adding an
    /// existing axis name replaces its values in place (never duplicates the
    /// axis, which would expand to identical points).
    pub fn axis<V: Into<ParamValue>>(mut self, name: &str, values: Vec<V>) -> Self {
        let values: Vec<ParamValue> = values.into_iter().map(Into::into).collect();
        if values.is_empty() {
            return self;
        }
        if let Some(existing) = self.axes.iter_mut().find(|(n, _)| n == name) {
            existing.1 = values;
        } else {
            self.axes.push((name.to_string(), values));
        }
        self
    }

    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Names of the grid's axes, in insertion order.
    pub fn axis_names(&self) -> Vec<&str> {
        self.axes.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Drop every axis whose name fails `keep`, returning the removed names.
    pub fn retain_axes<F: FnMut(&str) -> bool>(&mut self, mut keep: F) -> Vec<String> {
        let mut dropped = Vec::new();
        self.axes.retain(|(n, _)| {
            if keep(n) {
                true
            } else {
                dropped.push(n.clone());
                false
            }
        });
        dropped
    }

    /// Number of points the grid expands to.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// Expand into concrete parameter points over `base`. An empty grid
    /// yields the base point alone, so "no sweep" is just the trivial grid.
    pub fn points(&self, base: &Params) -> Vec<Params> {
        let mut points = vec![base.clone()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for p in &points {
                for v in values {
                    let mut q = p.clone();
                    q.set(name, v.clone());
                    next.push(q);
                }
            }
            points = next;
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_replaces_in_place() {
        let mut p = Params::new().with("a", 1u64).with("b", 2.5);
        p.set("a", 9u64);
        assert_eq!(p.u64("a", 0), 9);
        assert_eq!(p.iter().count(), 2);
        assert_eq!(p.iter().next().unwrap().0, "a", "order preserved");
    }

    #[test]
    fn typed_getters_fall_back_to_defaults() {
        let p = Params::new().with("x", 4u64);
        assert_eq!(p.f64("x", 0.0), 4.0);
        assert_eq!(p.u64("missing", 7), 7);
        assert!(p.bool("missing", true));
        assert_eq!(p.str("x", ""), "4");
    }

    #[test]
    fn parse_guesses_types() {
        assert_eq!(ParamValue::parse("true"), ParamValue::Bool(true));
        assert_eq!(ParamValue::parse("12"), ParamValue::U64(12));
        assert_eq!(ParamValue::parse("1.5"), ParamValue::F64(1.5));
        assert_eq!(ParamValue::parse("abc"), ParamValue::Str("abc".into()));
    }

    #[test]
    fn float_equality_is_bit_exact_so_equal_params_canonicalize_identically() {
        // 0.0 and -0.0 are IEEE-equal but format (and hash) differently:
        // they must NOT compare equal, or a cache keyed by bits would
        // disagree with equality.
        let zero = ParamValue::F64(0.0);
        let neg_zero = ParamValue::F64(-0.0);
        assert_ne!(zero, neg_zero);
        assert_ne!(zero.to_string(), neg_zero.to_string(), "labels differ too");
        // NaN is a perfectly reproducible stored value; bit equality makes
        // it self-equal instead of poisoning comparisons.
        let nan = ParamValue::F64(f64::NAN);
        assert_eq!(nan, nan.clone());
        // One ULP apart: unequal values, unequal labels (Rust's shortest
        // round-trip float formatting is injective on bit patterns).
        let a = ParamValue::F64(0.1);
        let b = ParamValue::F64(f64::from_bits(0.1f64.to_bits() + 1));
        assert_ne!(a, b);
        assert_ne!(a.to_string(), b.to_string());
    }

    #[test]
    #[allow(clippy::excessive_precision)] // 17 significant digits is the point
    fn seventeen_digit_float_labels_round_trip_bit_exactly() {
        // A value needing the full 17 significant digits: its label must
        // parse back to the identical bit pattern (`{}` prints the
        // shortest uniquely round-tripping decimal).
        let x = 0.123_456_789_012_345_678_f64;
        let v = ParamValue::F64(x);
        assert_eq!(ParamValue::parse(&v.to_string()), v);
        let p = Params::new().with("x", x).with("y", -0.0);
        let q = Params::new().with("x", x).with("y", -0.0);
        assert_eq!(p, q);
        assert_eq!(p.label(), q.label(), "equal params, identical labels");
    }

    #[test]
    fn grid_expands_row_major() {
        let grid = SweepGrid::new()
            .axis("a", vec![1u64, 2])
            .axis("b", vec![10u64, 20, 30]);
        assert_eq!(grid.len(), 6);
        let pts = grid.points(&Params::new());
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].u64("a", 0), 1);
        assert_eq!(pts[0].u64("b", 0), 10);
        assert_eq!(pts[1].u64("b", 0), 20, "last axis varies fastest");
        assert_eq!(pts[5].u64("a", 0), 2);
        assert_eq!(pts[5].u64("b", 0), 30);
    }

    #[test]
    fn empty_grid_is_the_base_point() {
        let base = Params::new().with("k", 3u64);
        let pts = SweepGrid::new().points(&base);
        assert_eq!(pts, vec![base]);
    }

    #[test]
    fn readding_an_axis_replaces_it() {
        let grid = SweepGrid::new()
            .axis("a", vec![1u64, 2])
            .axis("a", vec![7u64]);
        assert_eq!(grid.len(), 1, "no duplicate identical points");
        let pts = grid.points(&Params::new());
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].u64("a", 0), 7);
    }

    #[test]
    fn retain_axes_reports_dropped_names() {
        let mut grid = SweepGrid::new()
            .axis("keep", vec![1u64])
            .axis("drop", vec![2u64]);
        let dropped = grid.retain_axes(|n| n == "keep");
        assert_eq!(dropped, vec!["drop".to_string()]);
        assert_eq!(grid.axis_names(), vec!["keep"]);
    }
}
