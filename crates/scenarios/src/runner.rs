//! Work-stealing, deadline-aware parallel sweep runner.
//!
//! A sweep is the cartesian product of a [`SweepGrid`] and a seed list —
//! or, for [`SweepRunner::run_suite`], the union of several scenarios'
//! sweeps in one shared pool. Jobs are ordered longest-expected-first
//! (LPT, using the [`CostTable`]'s measured wall-clocks with a size
//! heuristic as cold-start fallback), injected into a global
//! [`crossbeam::deque::Injector`], and executed by workers that grab
//! batches into per-worker Chase–Lev deques and steal from siblings when
//! dry — so one long job never pins a worker while short jobs queue
//! behind it.
//!
//! Scheduling never touches results: each worker constructs its own
//! [`Simulation`] per `(point, seed)` job, so the metrics of every job are
//! bit-identical to a serial (`threads = 1`) run whatever the thread count,
//! job order, or steal interleaving. Results are written into per-job slots
//! of a lock-free buffer (each slot written by exactly the one worker that
//! executed the job) and aggregated in seed order, keeping the merged
//! statistics deterministic too.
//!
//! A job that panics no longer takes the sweep's bookkeeping down with it:
//! the panic is caught per job and surfaced through [`SweepError`], naming
//! the `(scenario, point, seed)` identity of every failed job.
//!
//! With a [`ResultCache`] attached ([`SweepRunner::with_cache`]) the same
//! purity buys memoization: jobs whose content hash is already stored are
//! served bit-exactly from the cache before anything reaches the injector
//! — no pool traffic, no cost-table observation — and every miss is
//! appended to its worker's write-ahead segment, merged into the
//! persistent index when the sweep completes. The emitted artifact is
//! byte-identical cached or not; only the wall-clock changes.

use crate::cache::{self, CacheKey, CacheStats, CacheWriter, ResultCache};
use crate::cost::CostTable;
use crate::metrics::{summarize, MetricSummary, Metrics};
use crate::params::{Params, SweepGrid};
use crate::Scenario;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use des::Simulation;
use serde::Serialize;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// All runs of one parameter point: the per-seed metrics plus aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct PointResult {
    pub params: Params,
    /// `(seed, metrics)` in seed order — independent of worker scheduling.
    pub per_seed: Vec<(u64, Metrics)>,
    pub summary: Vec<(String, MetricSummary)>,
}

/// The outcome of sweeping one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    pub scenario: String,
    pub seeds: Vec<u64>,
    pub points: Vec<PointResult>,
}

/// A whole-suite run (`scenarios run --all`), the JSON artifact schema.
/// Deliberately excludes run-environment details like the thread count:
/// the artifact is bit-identical for a given seed list however it was
/// parallelised, so two runs can be compared with `cmp`.
#[derive(Debug, Clone, Serialize)]
pub struct SweepSuite {
    pub seeds: Vec<u64>,
    pub results: Vec<SweepResult>,
}

impl SweepSuite {
    /// The canonical artifact rendering — exactly the bytes `scenarios run
    /// --json` writes. The what-if service ships this text verbatim over
    /// the wire (never a re-serialization on the client side), which is
    /// what makes server- and CLI-written artifacts byte-identical.
    pub fn artifact_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("value-tree rendering is infallible")
    }
}

/// How the runner orders jobs before injecting them into the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobOrder {
    /// Longest-expected-first by [`CostTable`] estimate (LPT scheduling);
    /// ties broken by input position so the order is fully deterministic.
    #[default]
    Cost,
    /// The natural input order: task-major, point-major, seed-minor.
    Input,
}

impl JobOrder {
    /// Parse a CLI spelling: `cost` or `input`.
    pub fn parse(s: &str) -> Result<JobOrder, String> {
        match s {
            "cost" => Ok(JobOrder::Cost),
            "input" => Ok(JobOrder::Input),
            other => Err(format!("unknown job order `{other}` (try cost|input)")),
        }
    }
}

/// One failed `(scenario, point, seed)` job.
#[derive(Debug, Clone)]
pub struct JobFailure {
    pub scenario: String,
    pub point: String,
    pub seed: u64,
    pub message: String,
}

/// One or more sweep jobs panicked. The sweep's surviving results are
/// discarded — partial artifacts would silently skew aggregates — but every
/// failing job is named, so the offending `(scenario, point, seed)` can be
/// replayed directly.
#[derive(Debug, Clone)]
pub struct SweepError {
    pub failures: Vec<JobFailure>,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} sweep job(s) panicked:", self.failures.len())?;
        for j in &self.failures {
            writeln!(
                f,
                "  - scenario `{}` point `{}` seed {}: {}",
                j.scenario, j.point, j.seed, j.message
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for SweepError {}

/// Slot-indexed, write-once result storage shared by the worker pool.
///
/// Each job id owns exactly one slot, and the deques hand each job to
/// exactly one worker, so writes are disjoint by construction; the scoped
/// thread join orders every write before collection. That invariant is what
/// lets results land without a mutex per slot — and what keeps the output
/// independent of who executed what.
pub(crate) struct SlotBuffer<T> {
    slots: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for SlotBuffer<T> {}

impl<T> SlotBuffer<T> {
    pub(crate) fn new(n: usize) -> SlotBuffer<T> {
        SlotBuffer {
            slots: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// # Safety
    /// At most one thread may ever call this per index, and all calls must
    /// happen-before [`SlotBuffer::into_vec`] / [`SlotBuffer::take_vec`]
    /// (a pool join, or an acquire of a release made after the write).
    pub(crate) unsafe fn put(&self, index: usize, value: T) {
        *self.slots[index].get() = Some(value);
    }

    pub(crate) fn into_vec(self) -> Vec<Option<T>> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }

    /// Drain every slot through a shared reference — the finalization path
    /// for buffers living inside an `Arc` (the what-if service's persistent
    /// pool can't consume the buffer by value the way a scoped run can).
    ///
    /// # Safety
    /// Exactly one thread may call this, exactly once, and every
    /// [`SlotBuffer::put`] must happen-before it (the service guarantees
    /// this via the acquire side of its last-job `remaining` decrement: a
    /// worker's `AcqRel` `fetch_sub` to 1 synchronizes with every earlier
    /// release in the per-sweep release sequence, so all slot writes are
    /// visible to the finalizer).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn take_vec(&self) -> Vec<Option<T>> {
        self.slots.iter().map(|c| (*c.get()).take()).collect()
    }
}

/// One `(task, point, seed)` unit of work; `slot` is its global result index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    pub(crate) slot: usize,
    pub(crate) task: usize,
    pub(crate) point: usize,
    pub(crate) seed_idx: usize,
}

/// Expand per-task point lists × seeds into jobs with consecutive global
/// slots in task-major, point-major, seed-minor order — the slot layout
/// both the CLI runner and the service's pool share (it is what makes
/// their artifacts interchangeable).
pub(crate) fn expand_jobs(points: &[Vec<Params>], n_seeds: usize) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    for (task, task_points) in points.iter().enumerate() {
        for point in 0..task_points.len() {
            for seed_idx in 0..n_seeds {
                jobs.push(Job {
                    slot: jobs.len(),
                    task,
                    point,
                    seed_idx,
                });
            }
        }
    }
    jobs
}

/// Longest-expected-first (LPT) order, ties broken by slot so the order is
/// fully deterministic. `estimates[task][point]` is the expected seconds.
pub(crate) fn sort_jobs_lpt(jobs: &mut [Job], estimates: &[Vec<f64>]) {
    jobs.sort_by(|a, b| {
        estimates[b.task][b.point]
            .total_cmp(&estimates[a.task][a.point])
            .then(a.slot.cmp(&b.slot))
    });
}

/// Fold slot-ordered metrics back into per-scenario results: task, point,
/// seed — the injection/execution order never shows up here. Shared by the
/// scoped runner and the service finalizer, so both aggregate identically.
pub(crate) fn aggregate_results(
    names: &[&str],
    points: Vec<Vec<Params>>,
    seeds: &[u64],
    slot_values: Vec<Option<Metrics>>,
) -> Vec<SweepResult> {
    let mut slot_values = slot_values.into_iter();
    let mut results = Vec::with_capacity(names.len());
    for (name, task_points) in names.iter().zip(points) {
        let point_results = task_points
            .into_iter()
            .map(|params| {
                let per_seed: Vec<(u64, Metrics)> = seeds
                    .iter()
                    .map(|&seed| {
                        let m = slot_values
                            .next()
                            .flatten()
                            .expect("every non-failed job filled its slot");
                        (seed, m)
                    })
                    .collect();
                let summary =
                    summarize(&per_seed.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>());
                PointResult {
                    params,
                    per_seed,
                    summary,
                }
            })
            .collect();
        results.push(SweepResult {
            scenario: name.to_string(),
            seeds: seeds.to_vec(),
            points: point_results,
        });
    }
    results
}

/// Fans `grid × seeds` jobs across work-stealing worker threads.
#[derive(Debug)]
pub struct SweepRunner {
    threads: usize,
    seeds: Vec<u64>,
    order: JobOrder,
    /// Prior costs driving the LPT order (typically loaded from CI's
    /// persisted timing artifact).
    costs: CostTable,
    /// Wall-clocks measured by this runner's own jobs, accumulated across
    /// `run` calls — the next run's (or next CI round's) prior. Cache hits
    /// never contribute: a hit costs microseconds, and folding it in would
    /// drag the LPT prior for that point shape toward zero.
    observed: Mutex<CostTable>,
    /// Memoized `(scenario, params, seed) → Metrics` store. Consulted
    /// before jobs are injected — hits bypass the pool entirely — and fed
    /// by workers' write-ahead segments on miss.
    cache: Option<Mutex<ResultCache>>,
}

impl Clone for SweepRunner {
    fn clone(&self) -> Self {
        SweepRunner {
            threads: self.threads,
            seeds: self.seeds.clone(),
            order: self.order,
            costs: self.costs.clone(),
            observed: Mutex::new(self.observed.lock().unwrap().clone()),
            cache: self
                .cache
                .as_ref()
                .map(|c| Mutex::new(c.lock().unwrap().clone())),
        }
    }
}

impl SweepRunner {
    /// `threads` is clamped to at least one; `seeds` must be non-empty.
    pub fn new(threads: usize, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "a sweep needs at least one seed");
        SweepRunner {
            threads: threads.max(1),
            seeds,
            order: JobOrder::default(),
            costs: CostTable::new(),
            observed: Mutex::new(CostTable::new()),
            cache: None,
        }
    }

    /// The default seed sequence: `REPORT_SEED, REPORT_SEED+1, …` so one
    /// seed reproduces the legacy single-run reports exactly.
    pub fn seeds(n: usize) -> Vec<u64> {
        (0..n.max(1) as u64)
            .map(|i| crate::REPORT_SEED + i)
            .collect()
    }

    /// Choose the injection order (default: [`JobOrder::Cost`]).
    pub fn with_order(mut self, order: JobOrder) -> Self {
        self.order = order;
        self
    }

    /// Supply prior wall-clock measurements for the LPT order.
    pub fn with_cost_table(mut self, costs: CostTable) -> Self {
        self.costs = costs;
        self
    }

    /// Attach a persistent result cache: jobs whose `(scenario, params,
    /// seed)` content hash is already stored are served bit-exactly from
    /// it instead of simulated, and every miss is persisted on completion.
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(Mutex::new(cache));
        self
    }

    /// Hit/miss/saved-wall-clock counters of the attached cache, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.lock().unwrap().stats())
    }

    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The wall-clocks this runner has measured so far (all `run`/
    /// `run_suite` calls on this instance), keyed like the prior table —
    /// persist with [`CostTable::save`] to feed the next run's ordering.
    pub fn observed_costs(&self) -> CostTable {
        self.observed.lock().unwrap().clone()
    }

    /// Run `scenario` over every `(grid point, seed)` combination.
    /// Panics (with every failing job named) if any job panics; use
    /// [`SweepRunner::try_run`] to handle failures programmatically.
    pub fn run(&self, scenario: &dyn Scenario, grid: &SweepGrid) -> SweepResult {
        self.try_run(scenario, grid)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SweepRunner::run`].
    pub fn try_run(
        &self,
        scenario: &dyn Scenario,
        grid: &SweepGrid,
    ) -> Result<SweepResult, SweepError> {
        let mut results = self.try_run_suite(&[(scenario, grid.clone())])?;
        Ok(results.pop().expect("one task in, one result out"))
    }

    /// Run several scenarios' sweeps through one shared work pool, so short
    /// scenarios pack around long ones instead of queueing behind a
    /// per-scenario barrier. Results come back in task order.
    pub fn run_suite(&self, tasks: &[(&dyn Scenario, SweepGrid)]) -> Vec<SweepResult> {
        self.try_run_suite(tasks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SweepRunner::run_suite`].
    pub fn try_run_suite(
        &self,
        tasks: &[(&dyn Scenario, SweepGrid)],
    ) -> Result<Vec<SweepResult>, SweepError> {
        let n_seeds = self.seeds.len();

        // Expand every task's grid; jobs get consecutive global slots in
        // task-major, point-major, seed-minor order.
        let points: Vec<Vec<Params>> = tasks
            .iter()
            .map(|(s, g)| g.points(&s.default_params()))
            .collect();
        let mut jobs = expand_jobs(&points, n_seeds);
        let n_jobs = jobs.len();
        let slots: SlotBuffer<Metrics> = SlotBuffer::new(n_jobs);

        // Memoization pre-scan: hits are written straight into their
        // result slot and never reach the injector, the cost estimates, or
        // the observed-cost table — only genuine misses become pool jobs.
        let mut cache = self.cache.as_ref().map(|c| c.lock().unwrap());
        let mut keys: Vec<Option<CacheKey>> = Vec::new();
        if let Some(cache) = cache.as_deref_mut() {
            keys.resize(n_jobs, None);
            let mut misses = Vec::with_capacity(jobs.len());
            for job in jobs {
                let (scenario, _) = &tasks[job.task];
                let params = &points[job.task][job.point];
                let key = cache::job_key(
                    cache.salt(),
                    scenario.name(),
                    params,
                    self.seeds[job.seed_idx],
                );
                match cache.lookup(&key) {
                    // SAFETY: the pre-scan runs on this thread before any
                    // worker exists, each slot is visited at most once
                    // here, and hit slots are never handed to the pool —
                    // the write-once contract holds.
                    Some(metrics) => unsafe { slots.put(job.slot, metrics) },
                    None => {
                        keys[job.slot] = Some(key);
                        misses.push(job);
                    }
                }
            }
            jobs = misses;
        }

        // Deadline-aware ordering: estimate each point once, then inject
        // longest-expected-first. Estimates steer only the start order —
        // results are slot-indexed, so the artifact cannot observe them.
        if self.order == JobOrder::Cost {
            let estimates: Vec<Vec<f64>> = tasks
                .iter()
                .zip(&points)
                .map(|((s, _), pts)| {
                    pts.iter()
                        .map(|p| self.costs.estimate(s.name(), p))
                        .collect()
                })
                .collect();
            sort_jobs_lpt(&mut jobs, &estimates);
        }

        let injector = Injector::new();
        for job in &jobs {
            injector.push(*job);
        }

        let threads = self.threads.min(jobs.len().max(1));
        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Job>> = workers.iter().map(Worker::stealer).collect();
        let failures: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());
        let timings: Mutex<CostTable> = Mutex::new(CostTable::new());

        // Misses persist through per-worker write-ahead segments: each
        // worker owns one append-only file, so the lock-free hot path
        // never serializes on the store. A cache I/O failure is a real
        // error (a CI warm run silently degrading to 0% hits must not
        // pass), hence the loud panic.
        let writers: Option<Vec<CacheWriter>> = cache.as_deref().map(|c| {
            (0..threads)
                .map(|_| c.writer())
                .collect::<Result<Vec<_>, crate::error::Error>>()
                .unwrap_or_else(|e| panic!("sweep cache: {e}"))
        });

        let run_worker = |widx: usize, local: Worker<Job>| {
            let mut observed = CostTable::new();
            // The canonical crossbeam find-task loop: local deque first,
            // then a batch from the injector, then steal from siblings;
            // repeat while anything reports Retry.
            let find_task = || {
                local.pop().or_else(|| {
                    std::iter::repeat_with(|| {
                        injector
                            .steal_batch_and_pop(&local)
                            .or_else(|| stealers.iter().map(Stealer::steal).collect())
                    })
                    .find(|s: &Steal<Job>| !s.is_retry())
                    .and_then(Steal::success)
                })
            };
            while let Some(job) = find_task() {
                let (scenario, _) = &tasks[job.task];
                let params = &points[job.task][job.point];
                let seed = self.seeds[job.seed_idx];
                let started = Instant::now();
                // A panicking scenario must not poison shared state or lose
                // its identity: catch it here and report (scenario, point,
                // seed). AssertUnwindSafe is sound because a failed sweep
                // discards all results (no broken invariant is ever read).
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut sim = Simulation::new(seed);
                    scenario.run(&mut sim, params)
                }));
                match outcome {
                    Ok(metrics) => {
                        let elapsed = started.elapsed().as_secs_f64();
                        observed.record(&CostTable::key(scenario.name(), params), elapsed);
                        if let Some(writers) = &writers {
                            let key = keys[job.slot].expect("every pool job missed the cache");
                            writers[widx]
                                .append(&key, scenario.name(), elapsed, &metrics)
                                .unwrap_or_else(|e| panic!("sweep cache: {e}"));
                        }
                        // SAFETY: `job.slot` is unique per job and the deque
                        // delivered this job to exactly this worker; the
                        // scope join below sequences the write before
                        // `into_vec`.
                        unsafe { slots.put(job.slot, metrics) };
                    }
                    Err(payload) => failures.lock().unwrap().push(JobFailure {
                        scenario: scenario.name().to_string(),
                        point: params.label(),
                        seed,
                        message: panic_message(payload.as_ref()),
                    }),
                }
            }
            timings.lock().unwrap().merge(&observed);
        };

        let mut workers = workers.into_iter();
        if threads <= 1 {
            run_worker(0, workers.next().expect("one worker"));
        } else {
            let run_worker = &run_worker;
            std::thread::scope(|scope| {
                for (widx, local) in workers.enumerate() {
                    scope.spawn(move || run_worker(widx, local));
                }
            });
        }

        self.observed
            .lock()
            .unwrap()
            .merge(&timings.into_inner().unwrap());

        let mut failures = failures.into_inner().unwrap();
        if !failures.is_empty() {
            // Deterministic report order however the pool interleaved.
            // The cache commit is skipped: the workers' write-ahead
            // segments stay on disk and are recovered at the next open, so
            // the surviving jobs' results aren't lost either.
            failures.sort_by(|a, b| {
                (&a.scenario, &a.point, a.seed).cmp(&(&b.scenario, &b.point, b.seed))
            });
            return Err(SweepError { failures });
        }

        // Sweep completion: fsync the per-worker segments and merge them
        // into the cache index, garbage-collecting stale-salt entries.
        if let Some(cache) = cache.as_deref_mut() {
            let writers = writers.expect("an attached cache always has writers");
            cache
                .commit(writers)
                .unwrap_or_else(|e| panic!("sweep cache: {e}"));
        }

        // Collect slot-major: task, point, seed — the injection order never
        // shows up here.
        let names: Vec<&str> = tasks.iter().map(|(s, _)| s.name()).collect();
        Ok(aggregate_results(
            &names,
            points,
            &self.seeds,
            slots.into_vec(),
        ))
    }
}

/// Best-effort text of a panic payload (panics carry `&str` or `String`
/// unless thrown with `panic_any`).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl SweepResult {
    /// Bit-exact equality of every per-(point, seed) metric — what the
    /// determinism property compares between serial and parallel runs.
    pub fn bits_eq(&self, other: &SweepResult) -> bool {
        self.scenario == other.scenario
            && self.seeds == other.seeds
            && self.points.len() == other.points.len()
            && self.points.iter().zip(&other.points).all(|(a, b)| {
                a.params == b.params
                    && a.per_seed.len() == b.per_seed.len()
                    && a.per_seed
                        .iter()
                        .zip(&b.per_seed)
                        .all(|((sa, ma), (sb, mb))| sa == sb && ma.bits_eq(mb))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SweepGrid;

    /// A scenario whose metrics encode (param, seed) so slot routing bugs
    /// would be visible immediately.
    struct Probe;

    impl Scenario for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn title(&self) -> &'static str {
            "routing probe"
        }
        fn default_params(&self) -> Params {
            Params::new().with("k", 1u64)
        }
        fn run(&self, sim: &mut Simulation, params: &Params) -> Metrics {
            let mut m = Metrics::new();
            m.push("k", params.f64("k", 0.0));
            m.push("seed", sim.seed() as f64);
            m.push("draw", sim.stream("probe").f64());
            m
        }
    }

    #[test]
    fn slot_buffer_disjoint_writes_from_threads() {
        // The SlotBuffer safety contract, reduced to its essentials so Miri
        // can interpret it directly (the full sweep tests are too heavy):
        // disjoint per-thread writes, join, then collect — every write must
        // be visible and land in its own slot.
        let buf = SlotBuffer::<usize>::new(16);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let buf = &buf;
                scope.spawn(move || {
                    for i in (t..16).step_by(4) {
                        // SAFETY: each index is written by exactly one
                        // thread (i ≡ t mod 4), and the scope join orders
                        // all writes before into_vec below.
                        unsafe { buf.put(i, i * 10) };
                    }
                });
            }
        });
        let got = buf.into_vec();
        for (i, v) in got.into_iter().enumerate() {
            assert_eq!(v, Some(i * 10));
        }
    }

    #[test]
    fn slot_buffer_disjoint_writes_from_threads_then_take_vec() {
        // The service-finalizer variant of the contract above: writers
        // publish with a release fetch_sub, the last decrementer acquires
        // and drains through &self — exactly the what-if service's
        // finalization protocol, reduced for Miri.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let buf = SlotBuffer::<usize>::new(16);
        let remaining = AtomicUsize::new(16);
        let drained = std::sync::Mutex::new(None);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let buf = &buf;
                let remaining = &remaining;
                let drained = &drained;
                scope.spawn(move || {
                    for i in (t..16).step_by(4) {
                        // SAFETY: index i is written only by thread t
                        // (i ≡ t mod 4); the AcqRel fetch_sub below
                        // releases the write, and the thread observing the
                        // count hit zero acquires every prior decrement.
                        unsafe { buf.put(i, i * 10) };
                        if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            // SAFETY: last decrement — every put
                            // happens-before this take_vec.
                            *drained.lock().unwrap() = Some(unsafe { buf.take_vec() });
                        }
                    }
                });
            }
        });
        let got = drained.lock().unwrap().take().expect("one thread drained");
        for (i, v) in got.into_iter().enumerate() {
            assert_eq!(v, Some(i * 10));
        }
    }

    #[test]
    fn jobs_land_in_their_slots() {
        let runner = SweepRunner::new(3, vec![7, 8]);
        let grid = SweepGrid::new().axis("k", vec![10u64, 20, 30]);
        let result = runner.run(&Probe, &grid);
        assert_eq!(result.points.len(), 3);
        for (pi, point) in result.points.iter().enumerate() {
            assert_eq!(point.params.u64("k", 0), 10 * (pi as u64 + 1));
            assert_eq!(point.per_seed.len(), 2);
            for ((seed, m), expect) in point.per_seed.iter().zip([7u64, 8]) {
                assert_eq!(*seed, expect);
                assert_eq!(m.get("seed"), Some(expect as f64));
                assert_eq!(m.get("k"), Some(point.params.f64("k", 0.0)));
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let grid = SweepGrid::new().axis("k", vec![1u64, 2, 3, 4, 5]);
        let serial = SweepRunner::new(1, vec![1, 2, 3]).run(&Probe, &grid);
        let parallel = SweepRunner::new(4, vec![1, 2, 3]).run(&Probe, &grid);
        assert!(serial.bits_eq(&parallel));
    }

    #[test]
    fn job_order_cannot_influence_results() {
        let grid = SweepGrid::new().axis("k", vec![1u64, 2, 3, 4]);
        let mut prior = CostTable::new();
        // A deliberately *wrong* prior (claims k=1 is the longest job):
        // ordering may be misled, results must not be.
        prior.record("probe|k=1", 100.0);
        prior.record("probe|k=4", 0.001);
        let cost = SweepRunner::new(3, vec![1, 2])
            .with_cost_table(prior)
            .run(&Probe, &grid);
        let input = SweepRunner::new(3, vec![1, 2])
            .with_order(JobOrder::Input)
            .run(&Probe, &grid);
        assert!(cost.bits_eq(&input));
    }

    #[test]
    fn run_suite_matches_individual_runs() {
        struct Probe2;
        impl Scenario for Probe2 {
            fn name(&self) -> &'static str {
                "probe2"
            }
            fn title(&self) -> &'static str {
                "second probe"
            }
            fn default_params(&self) -> Params {
                Params::new().with("j", 5u64)
            }
            fn run(&self, sim: &mut Simulation, params: &Params) -> Metrics {
                let mut m = Metrics::new();
                m.push("j", params.f64("j", 0.0));
                m.push("draw", sim.stream("probe2").f64());
                m
            }
        }
        let grid1 = SweepGrid::new().axis("k", vec![1u64, 2]);
        let grid2 = SweepGrid::new();
        let runner = SweepRunner::new(4, vec![3, 4]);
        let suite = runner.run_suite(&[(&Probe, grid1.clone()), (&Probe2, grid2.clone())]);
        assert_eq!(suite.len(), 2);
        let solo1 = SweepRunner::new(1, vec![3, 4]).run(&Probe, &grid1);
        let solo2 = SweepRunner::new(1, vec![3, 4]).run(&Probe2, &grid2);
        assert!(suite[0].bits_eq(&solo1), "suite result order is task order");
        assert!(suite[1].bits_eq(&solo2));
    }

    #[test]
    fn summaries_cover_all_seeds() {
        let result = SweepRunner::new(2, vec![1, 2, 3, 4]).run(&Probe, &SweepGrid::new());
        let (_, draw) = result.points[0]
            .summary
            .iter()
            .find(|(n, _)| n == "draw")
            .expect("draw metric");
        assert_eq!(draw.n, 4);
        assert!(draw.min >= 0.0 && draw.max < 1.0);
    }

    #[test]
    fn default_seed_sequence_starts_at_report_seed() {
        assert_eq!(SweepRunner::seeds(3), vec![42, 43, 44]);
        assert_eq!(SweepRunner::seeds(0), vec![42], "clamped to one seed");
    }

    #[test]
    fn observed_costs_accumulate_per_point_shape() {
        let runner = SweepRunner::new(2, vec![1, 2, 3]);
        let grid = SweepGrid::new().axis("k", vec![1u64, 2]);
        runner.run(&Probe, &grid);
        let observed = runner.observed_costs();
        for key in ["probe|k=1", "probe|k=2"] {
            let mean = observed.mean_secs(key).expect("key measured");
            assert!(mean >= 0.0 && mean.is_finite(), "{key}: {mean}");
        }
    }

    /// A scenario that panics on one specific (point, seed) pair.
    struct Grenade;

    impl Scenario for Grenade {
        fn name(&self) -> &'static str {
            "grenade"
        }
        fn title(&self) -> &'static str {
            "panics on k=2, seed 8"
        }
        fn default_params(&self) -> Params {
            Params::new().with("k", 1u64)
        }
        fn run(&self, sim: &mut Simulation, params: &Params) -> Metrics {
            assert!(
                !(params.u64("k", 0) == 2 && sim.seed() == 8),
                "simulated scenario bug"
            );
            Metrics::new()
        }
    }

    #[test]
    fn panicking_job_reports_its_identity() {
        let grid = SweepGrid::new().axis("k", vec![1u64, 2, 3]);
        for threads in [1, 4] {
            let err = SweepRunner::new(threads, vec![7, 8])
                .try_run(&Grenade, &grid)
                .expect_err("the k=2/seed=8 job panics");
            assert_eq!(err.failures.len(), 1, "threads={threads}");
            let j = &err.failures[0];
            assert_eq!(j.scenario, "grenade");
            assert_eq!(j.point, "k=2");
            assert_eq!(j.seed, 8);
            assert!(
                j.message.contains("simulated scenario bug"),
                "{}",
                j.message
            );
            let display = err.to_string();
            assert!(display.contains("scenario `grenade` point `k=2` seed 8"));
        }
    }

    #[test]
    fn surviving_jobs_do_not_mask_the_failure() {
        // Every other job completes; the one grenade must still fail the
        // sweep (partial artifacts would silently skew aggregates) and the
        // error must name exactly the failing job.
        let grid = SweepGrid::new().axis("k", vec![2u64]);
        let err = SweepRunner::new(2, vec![7, 8, 9])
            .try_run(&Grenade, &grid)
            .expect_err("seed 8 panics");
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].seed, 8);
    }
}
