//! Parallel multi-seed sweep runner.
//!
//! A sweep is the cartesian product of a [`SweepGrid`] and a seed list. Jobs
//! are distributed over `std::thread` workers through an atomic cursor; each
//! worker constructs its own [`Simulation`] per `(point, seed)` job, so the
//! metrics of every job are bit-identical to a serial (`threads = 1`) run —
//! thread scheduling can only change *when* a job runs, never *what* it
//! computes. Results are written into pre-indexed slots and aggregated in
//! seed order, keeping the merged statistics deterministic too.

use crate::metrics::{summarize, MetricSummary, Metrics};
use crate::params::{Params, SweepGrid};
use crate::Scenario;
use des::Simulation;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// All runs of one parameter point: the per-seed metrics plus aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct PointResult {
    pub params: Params,
    /// `(seed, metrics)` in seed order — independent of worker scheduling.
    pub per_seed: Vec<(u64, Metrics)>,
    pub summary: Vec<(String, MetricSummary)>,
}

/// The outcome of sweeping one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    pub scenario: String,
    pub seeds: Vec<u64>,
    pub points: Vec<PointResult>,
}

/// A whole-suite run (`scenarios run --all`), the JSON artifact schema.
/// Deliberately excludes run-environment details like the thread count:
/// the artifact is bit-identical for a given seed list however it was
/// parallelised, so two runs can be compared with `cmp`.
#[derive(Debug, Clone, Serialize)]
pub struct SweepSuite {
    pub seeds: Vec<u64>,
    pub results: Vec<SweepResult>,
}

/// Fans `grid × seeds` jobs across worker threads.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    seeds: Vec<u64>,
}

impl SweepRunner {
    /// `threads` is clamped to at least one; `seeds` must be non-empty.
    pub fn new(threads: usize, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "a sweep needs at least one seed");
        SweepRunner {
            threads: threads.max(1),
            seeds,
        }
    }

    /// The default seed sequence: `REPORT_SEED, REPORT_SEED+1, …` so one
    /// seed reproduces the legacy single-run reports exactly.
    pub fn seeds(n: usize) -> Vec<u64> {
        (0..n.max(1) as u64)
            .map(|i| crate::REPORT_SEED + i)
            .collect()
    }

    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Run `scenario` over every `(grid point, seed)` combination.
    pub fn run(&self, scenario: &dyn Scenario, grid: &SweepGrid) -> SweepResult {
        let points = grid.points(&scenario.default_params());
        let n_seeds = self.seeds.len();
        let n_jobs = points.len() * n_seeds;

        // Job i = (point i / n_seeds, seed i % n_seeds); slots are indexed by
        // job id, so completion order cannot influence the output.
        let slots: Vec<Mutex<Option<Metrics>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        let worker = |_wid: usize| loop {
            let job = cursor.fetch_add(1, Ordering::Relaxed);
            if job >= n_jobs {
                break;
            }
            let params = &points[job / n_seeds];
            let seed = self.seeds[job % n_seeds];
            let mut sim = Simulation::new(seed);
            let metrics = scenario.run(&mut sim, params);
            *slots[job].lock().unwrap() = Some(metrics);
        };

        if self.threads == 1 {
            worker(0);
        } else {
            std::thread::scope(|scope| {
                for wid in 0..self.threads {
                    scope.spawn(move || worker(wid));
                }
            });
        }

        let point_results = points
            .into_iter()
            .enumerate()
            .map(|(pi, params)| {
                let per_seed: Vec<(u64, Metrics)> = (0..n_seeds)
                    .map(|si| {
                        let m = slots[pi * n_seeds + si]
                            .lock()
                            .unwrap()
                            .take()
                            .expect("every job ran");
                        (self.seeds[si], m)
                    })
                    .collect();
                let summary =
                    summarize(&per_seed.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>());
                PointResult {
                    params,
                    per_seed,
                    summary,
                }
            })
            .collect();

        SweepResult {
            scenario: scenario.name().to_string(),
            seeds: self.seeds.clone(),
            points: point_results,
        }
    }
}

impl SweepResult {
    /// Bit-exact equality of every per-(point, seed) metric — what the
    /// determinism property compares between serial and parallel runs.
    pub fn bits_eq(&self, other: &SweepResult) -> bool {
        self.scenario == other.scenario
            && self.seeds == other.seeds
            && self.points.len() == other.points.len()
            && self.points.iter().zip(&other.points).all(|(a, b)| {
                a.params == b.params
                    && a.per_seed.len() == b.per_seed.len()
                    && a.per_seed
                        .iter()
                        .zip(&b.per_seed)
                        .all(|((sa, ma), (sb, mb))| sa == sb && ma.bits_eq(mb))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SweepGrid;

    /// A scenario whose metrics encode (param, seed) so slot routing bugs
    /// would be visible immediately.
    struct Probe;

    impl Scenario for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn title(&self) -> &'static str {
            "routing probe"
        }
        fn default_params(&self) -> Params {
            Params::new().with("k", 1u64)
        }
        fn run(&self, sim: &mut Simulation, params: &Params) -> Metrics {
            let mut m = Metrics::new();
            m.push("k", params.f64("k", 0.0));
            m.push("seed", sim.seed() as f64);
            m.push("draw", sim.stream("probe").f64());
            m
        }
    }

    #[test]
    fn jobs_land_in_their_slots() {
        let runner = SweepRunner::new(3, vec![7, 8]);
        let grid = SweepGrid::new().axis("k", vec![10u64, 20, 30]);
        let result = runner.run(&Probe, &grid);
        assert_eq!(result.points.len(), 3);
        for (pi, point) in result.points.iter().enumerate() {
            assert_eq!(point.params.u64("k", 0), 10 * (pi as u64 + 1));
            assert_eq!(point.per_seed.len(), 2);
            for ((seed, m), expect) in point.per_seed.iter().zip([7u64, 8]) {
                assert_eq!(*seed, expect);
                assert_eq!(m.get("seed"), Some(expect as f64));
                assert_eq!(m.get("k"), Some(point.params.f64("k", 0.0)));
            }
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let grid = SweepGrid::new().axis("k", vec![1u64, 2, 3, 4, 5]);
        let serial = SweepRunner::new(1, vec![1, 2, 3]).run(&Probe, &grid);
        let parallel = SweepRunner::new(4, vec![1, 2, 3]).run(&Probe, &grid);
        assert!(serial.bits_eq(&parallel));
    }

    #[test]
    fn summaries_cover_all_seeds() {
        let result = SweepRunner::new(2, vec![1, 2, 3, 4]).run(&Probe, &SweepGrid::new());
        let (_, draw) = result.points[0]
            .summary
            .iter()
            .find(|(n, _)| n == "draw")
            .expect("draw metric");
        assert_eq!(draw.n, 4);
        assert!(draw.min >= 0.0 && draw.max < 1.0);
    }

    #[test]
    fn default_seed_sequence_starts_at_report_seed() {
        assert_eq!(SweepRunner::seeds(3), vec![42, 43, 44]);
        assert_eq!(SweepRunner::seeds(0), vec![42], "clamped to one seed");
    }
}
