//! Per-job wall-clock cost estimation for deadline-aware job ordering.
//!
//! The sweep runner schedules longest-expected-first (LPT): with a work
//! pool, makespan is minimised by starting the long jobs early so the short
//! ones pack around them. "Expected" comes from a [`CostTable`] — mean
//! measured wall-clock per `(scenario, point shape)` — persisted as a flat
//! JSON object so CI's timed-sweep artifacts can feed the next run's
//! ordering (`ci/sweep_costs.json` is the committed seed of that loop).
//!
//! Cost estimates influence only the *order* jobs start in, never their
//! results: the emitted artifact is bit-identical whatever the table says.
//! For shapes the table has never seen (cold start) a crude size heuristic
//! over the numeric parameters breaks ties instead.

use crate::error::Error;
use crate::params::{ParamValue, Params};
use std::collections::BTreeMap;
use std::path::Path;

/// Mean observed wall-clock per `(scenario, point-shape)` key.
///
/// Keys are `scenario|point-label` (see [`CostTable::key`]); the label folds
/// in every parameter, so two points of one scenario with different grid
/// values are distinct shapes. Entries accumulate (sum, count) in memory and
/// persist as the mean, which is all ordering needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostTable {
    entries: BTreeMap<String, (f64, u64)>,
}

impl CostTable {
    pub fn new() -> Self {
        CostTable::default()
    }

    /// The table key of one parameter point of a scenario.
    pub fn key(scenario: &str, params: &Params) -> String {
        format!("{scenario}|{}", params.label())
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Record one measured job duration.
    pub fn record(&mut self, key: &str, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return; // a clock hiccup must not poison the table
        }
        let e = self.entries.entry(key.to_string()).or_insert((0.0, 0));
        e.0 += secs;
        e.1 += 1;
    }

    /// Fold another table's observations into this one.
    pub fn merge(&mut self, other: &CostTable) {
        for (k, (sum, n)) in &other.entries {
            let e = self.entries.entry(k.clone()).or_insert((0.0, 0));
            e.0 += sum;
            e.1 += n;
        }
    }

    /// Mean observed seconds for a key, if the table has seen it.
    pub fn mean_secs(&self, key: &str) -> Option<f64> {
        self.entries.get(key).map(|(sum, n)| sum / *n as f64)
    }

    /// Expected duration of `(scenario, params)`: the table mean when known,
    /// else [`size_heuristic`] (cold start). Always finite and non-negative.
    pub fn estimate(&self, scenario: &str, params: &Params) -> f64 {
        self.mean_secs(&CostTable::key(scenario, params))
            .unwrap_or_else(|| size_heuristic(params))
    }

    /// Iterate `(key, mean_secs)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries
            .iter()
            .map(|(k, (sum, n))| (k.as_str(), sum / *n as f64))
    }

    /// Serialise as a flat `"key": mean_secs` JSON object, keys sorted —
    /// the same shape `ci/perf_baseline.json` uses, parseable without a
    /// deserializer (the serde shim only serialises).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (key, mean) in self.iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  \"{key}\": {mean:.6}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parse the flat JSON object [`CostTable::to_json`] writes. Unknown or
    /// malformed structure is an error; an empty object is a valid table.
    pub fn parse_json(text: &str) -> Result<CostTable, Error> {
        CostTable::parse_json_at(text, Path::new("<inline>"))
    }

    fn parse_json_at(text: &str, path: &Path) -> Result<CostTable, Error> {
        let err = |message: String| Error::CostTable {
            path: path.to_path_buf(),
            message,
        };
        let mut table = CostTable::new();
        let mut rest = text.trim();
        rest = rest
            .strip_prefix('{')
            .ok_or_else(|| err("expected a JSON object".to_string()))?;
        while let Some(open) = rest.find('"') {
            rest = &rest[open + 1..];
            let close = rest
                .find('"')
                .ok_or_else(|| err("unterminated key".to_string()))?;
            let key = &rest[..close];
            rest = &rest[close + 1..];
            let colon = rest
                .find(':')
                .ok_or_else(|| err(format!("key `{key}` without value")))?;
            rest = rest[colon + 1..].trim_start();
            let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
            let secs: f64 = rest[..end]
                .trim()
                .parse()
                .map_err(|e| err(format!("value of `{key}`: {e}")))?;
            table.record(key, secs);
            rest = &rest[end..];
        }
        Ok(table)
    }

    /// Load a persisted table from `path`.
    pub fn load(path: &Path) -> Result<CostTable, Error> {
        let text = std::fs::read_to_string(path).map_err(|e| Error::CostTable {
            path: path.to_path_buf(),
            message: format!("reading: {e}"),
        })?;
        CostTable::parse_json_at(&text, path)
    }

    /// Write the table to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> Result<(), Error> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| Error::CostTable {
                path: path.to_path_buf(),
                message: format!("creating {}: {e}", dir.display()),
            })?;
        }
        std::fs::write(path, self.to_json()).map_err(|e| Error::CostTable {
            path: path.to_path_buf(),
            message: format!("writing: {e}"),
        })
    }
}

/// Cold-start stand-in for a measured cost: a monotone function of the
/// point's numeric parameter magnitudes. Size-like tunables (ranks, reps,
/// trace lengths, grid extents) dominate a scenario's runtime, so "bigger
/// numbers ⇒ longer job" orders a never-measured sweep far better than
/// input order. Logarithms keep one huge axis from drowning the others.
pub fn size_heuristic(params: &Params) -> f64 {
    let mut score = 1.0;
    for (_, v) in params.iter() {
        let x = match v {
            ParamValue::U64(n) => *n as f64,
            ParamValue::F64(x) if x.is_finite() => x.abs(),
            _ => continue,
        };
        score += (1.0 + x).ln();
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_estimate_round_trip() {
        let mut t = CostTable::new();
        let p = Params::new().with("k", 3u64);
        let key = CostTable::key("fig01", &p);
        t.record(&key, 2.0);
        t.record(&key, 4.0);
        assert_eq!(t.mean_secs(&key), Some(3.0));
        assert_eq!(t.estimate("fig01", &p), 3.0);
    }

    #[test]
    fn unknown_shape_falls_back_to_size_heuristic() {
        let t = CostTable::new();
        let small = Params::new().with("reps", 2u64);
        let large = Params::new().with("reps", 2000u64);
        assert_eq!(t.estimate("x", &small), size_heuristic(&small));
        assert!(
            t.estimate("x", &large) > t.estimate("x", &small),
            "bigger numeric params must rank as longer jobs"
        );
    }

    #[test]
    fn heuristic_ignores_non_numeric_and_non_finite() {
        let base = size_heuristic(&Params::new());
        let p = Params::new()
            .with("mode", "fast")
            .with("flag", true)
            .with("bad", f64::NAN);
        assert_eq!(size_heuristic(&p), base);
    }

    #[test]
    fn json_round_trips_and_sorts_keys() {
        let mut t = CostTable::new();
        t.record("z|default", 1.5);
        t.record("a|k=2", 0.25);
        let json = t.to_json();
        assert!(json.find("a|k=2").unwrap() < json.find("z|default").unwrap());
        let back = CostTable::parse_json(&json).expect("parses");
        assert_eq!(back.mean_secs("z|default"), Some(1.5));
        assert_eq!(back.mean_secs("a|k=2"), Some(0.25));
    }

    #[test]
    fn parse_rejects_garbage_and_accepts_empty() {
        assert!(CostTable::parse_json("not json").is_err());
        assert!(CostTable::parse_json("{\"k\": abc}").is_err());
        let empty = CostTable::parse_json("{}\n").expect("empty object");
        assert!(empty.is_empty());
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut t = CostTable::new();
        t.record("k", f64::NAN);
        t.record("k", -1.0);
        assert_eq!(t.mean_secs("k"), None);
        t.record("k", 2.0);
        assert_eq!(t.mean_secs("k"), Some(2.0));
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = CostTable::new();
        a.record("k", 1.0);
        let mut b = CostTable::new();
        b.record("k", 3.0);
        b.record("other", 5.0);
        a.merge(&b);
        assert_eq!(a.mean_secs("k"), Some(2.0));
        assert_eq!(a.mean_secs("other"), Some(5.0));
    }
}
