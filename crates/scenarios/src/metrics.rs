//! Scenario metrics and their cross-seed aggregation.
//!
//! Each scenario run over one `(parameter point, seed)` pair produces a
//! [`Metrics`]: an ordered map of named scalars. The sweep runner folds the
//! per-seed metrics of a point into [`MetricSummary`] aggregates built on
//! [`des::stats`] — mean/std via Welford, exact p50/p99, and a normal-theory
//! 95% confidence half-width.

use des::{OnlineStats, Percentiles};
use serde::{Serialize, Value};

/// Ordered name → value map produced by one scenario run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: Vec<(String, f64)>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record a metric; re-recording a name replaces its value in place.
    pub fn push(&mut self, name: &str, value: f64) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 = value;
        } else {
            self.entries.push((name.to_string(), value));
        }
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Bit-exact equality — the sweep determinism property compares runs
    /// down to the float representation, not within a tolerance.
    pub fn bits_eq(&self, other: &Metrics) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|((an, av), (bn, bv))| an == bn && av.to_bits() == bv.to_bits())
    }
}

impl Serialize for Metrics {
    fn to_value(&self) -> Value {
        Value::Map(
            self.entries
                .iter()
                .map(|(n, v)| (n.clone(), Value::F64(*v)))
                .collect(),
        )
    }
}

/// Cross-seed aggregate of one metric.
#[derive(Debug, Clone, Serialize)]
pub struct MetricSummary {
    pub n: u64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p99: f64,
    /// Half-width of the normal-theory 95% confidence interval on the mean
    /// (`1.96·σ/√n`); zero for a single seed.
    pub ci95: f64,
}

/// Aggregate per-seed metrics. Metric names keep first-seen order; a metric
/// absent from some seeds is aggregated over the seeds that reported it.
pub fn summarize(runs: &[Metrics]) -> Vec<(String, MetricSummary)> {
    let mut order: Vec<String> = Vec::new();
    for run in runs {
        for (name, _) in run.iter() {
            if !order.iter().any(|n| n == name) {
                order.push(name.to_string());
            }
        }
    }
    order
        .into_iter()
        .map(|name| {
            let mut stats = OnlineStats::new();
            let mut pct = Percentiles::new();
            for run in runs {
                if let Some(v) = run.get(&name) {
                    stats.push(v);
                    pct.push(v);
                }
            }
            let n = stats.count();
            let ci95 = if n > 1 {
                1.96 * stats.std_dev() / (n as f64).sqrt()
            } else {
                0.0
            };
            let summary = MetricSummary {
                n,
                mean: stats.mean(),
                std_dev: stats.std_dev(),
                min: stats.min(),
                max: stats.max(),
                p50: pct.median(),
                p99: pct.p99(),
                ci95,
            };
            (name, summary)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, f64)]) -> Metrics {
        let mut out = Metrics::new();
        for (n, v) in pairs {
            out.push(n, *v);
        }
        out
    }

    #[test]
    fn push_replaces_and_preserves_order() {
        let mut x = m(&[("a", 1.0), ("b", 2.0)]);
        x.push("a", 3.0);
        assert_eq!(x.get("a"), Some(3.0));
        assert_eq!(x.iter().next().unwrap().0, "a");
        assert_eq!(x.len(), 2);
    }

    #[test]
    fn bits_eq_catches_tiny_differences() {
        let a = m(&[("x", 0.1)]);
        let b = m(&[("x", 0.1 + 1e-18)]);
        assert!(a.bits_eq(&a.clone()));
        // 0.1 + 1e-18 rounds back to 0.1 in f64; nudge by one ULP instead.
        let mut c = Metrics::new();
        c.push("x", f64::from_bits(0.1f64.to_bits() + 1));
        assert!(a.bits_eq(&b));
        assert!(!a.bits_eq(&c));
    }

    #[test]
    fn summarize_matches_hand_computation() {
        let runs = vec![m(&[("lat", 1.0)]), m(&[("lat", 3.0)]), m(&[("lat", 2.0)])];
        let s = summarize(&runs);
        assert_eq!(s.len(), 1);
        let (name, agg) = &s[0];
        assert_eq!(name, "lat");
        assert_eq!(agg.n, 3);
        assert!((agg.mean - 2.0).abs() < 1e-12);
        assert!((agg.p50 - 2.0).abs() < 1e-12);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 3.0);
        assert!(agg.ci95 > 0.0);
    }

    #[test]
    fn summarize_keeps_first_seen_metric_order() {
        let runs = vec![m(&[("b", 1.0), ("a", 2.0)]), m(&[("a", 4.0), ("c", 5.0)])];
        let s = summarize(&runs);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].0, "b");
        assert_eq!(s[1].0, "a");
        assert_eq!(s[2].0, "c");
        assert_eq!(s[1].1.n, 2, "metric present in both runs");
        assert_eq!(s[0].1.n, 1, "metric present in one run");
    }
}
