//! The what-if service over its actual TCP wire: N concurrent clients
//! against one server, racing submits/status/cancel, identical concurrent
//! requests deduplicating, validation errors crossing the wire with their
//! alternatives intact, and server-fetched artifacts byte-identical to
//! the direct runner path.

use scenarios::server::Server;
use scenarios::service::{Service, ServiceConfig};
use scenarios::wire::Client;
use scenarios::{
    Error, Metrics, ParamValue, Params, Registry, Scenario, SweepRequest, SweepRunner, SweepStatus,
    SweepSuite,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

fn cache_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "wire-cache-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Sleepy {
    name: &'static str,
    millis: u64,
}

impl Scenario for Sleepy {
    fn name(&self) -> &'static str {
        self.name
    }
    fn title(&self) -> &'static str {
        "sleeps then reports"
    }
    fn default_params(&self) -> Params {
        Params::new().with("k", 1u64)
    }
    fn run(&self, sim: &mut des::Simulation, params: &Params) -> Metrics {
        std::thread::sleep(Duration::from_millis(self.millis));
        let mut m = Metrics::new();
        m.push("k", params.u64("k", 1) as f64);
        m.push("draw", sim.stream("draw").f64());
        m
    }
}

fn sleepy_registry() -> Registry {
    let mut registry = Registry::new();
    registry.register(Box::new(Sleepy {
        name: "slow",
        millis: 25,
    }));
    registry.register(Box::new(Sleepy {
        name: "fast",
        millis: 1,
    }));
    registry
}

/// Boot a server on an OS-picked port; returns its address and the thread
/// running the accept loop (joined after a client sends `shutdown`).
fn serve(registry: Registry, config: ServiceConfig) -> (SocketAddr, JoinHandle<()>) {
    let service = Service::start(registry, config).expect("service starts");
    let server = Server::bind(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

#[test]
fn server_artifact_bytes_match_the_direct_runner() {
    let request = SweepRequest::new()
        .scenario("fig07_latency")
        .axis(
            "reps",
            vec![ParamValue::parse("40"), ParamValue::parse("80")],
        )
        .with_seeds(2);

    let registry = Registry::standard();
    let validated = request.validate(&registry).expect("valid");
    let results = SweepRunner::new(2, validated.seeds.clone())
        .try_run_suite(&validated.resolve(&registry))
        .expect("runner succeeds");
    let direct = SweepSuite {
        seeds: validated.seeds.clone(),
        results,
    }
    .artifact_json();

    let (addr, server) = serve(Registry::standard(), ServiceConfig::new().with_threads(2));
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let receipt = client.submit(&request).expect("submit");
    let response = client.wait(receipt.id).expect("wait");
    assert!(matches!(response.status, SweepStatus::Done));
    assert_eq!(
        response.artifact.expect("artifact"),
        direct,
        "artifact bytes changed crossing the wire"
    );
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

#[test]
fn validation_errors_cross_the_wire_with_alternatives() {
    let (addr, server) = serve(sleepy_registry(), ServiceConfig::new().with_threads(1));
    let mut client = Client::connect(addr).expect("connect");

    let err = client
        .submit(&SweepRequest::new().scenario("nonesuch"))
        .expect_err("unknown scenario must be refused");
    match &err {
        Error::Server { kind, message } => {
            assert_eq!(kind, "unknown_scenario");
            assert!(
                message.contains("slow") && message.contains("fast"),
                "error must list the known scenarios: {message}"
            );
        }
        other => panic!("expected a server error, got {other}"),
    }

    let err = client
        .submit(
            &SweepRequest::new()
                .scenario("fast")
                .axis("warp", vec![ParamValue::parse("9")]),
        )
        .expect_err("unknown axis must be refused");
    match &err {
        Error::Server { kind, message } => {
            assert_eq!(kind, "unknown_axis");
            assert!(
                message.contains("warp") && message.contains("tunables"),
                "error must name the axis and the tunables: {message}"
            );
        }
        other => panic!("expected a server error, got {other}"),
    }

    let err = client.status(4242).expect_err("unknown id must be refused");
    assert!(matches!(&err, Error::Server { kind, .. } if kind == "unknown_request"));

    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// N clients hammer one server with interleaved submit/status/cancel.
/// Every even client cancels its request, every odd one waits it out;
/// the registry must stay coherent (right terminal states, all ids
/// distinct, list sees everything).
#[test]
fn concurrent_clients_submit_status_and_cancel() {
    const CLIENTS: usize = 6;
    let (addr, server) = serve(sleepy_registry(), ServiceConfig::new().with_threads(2));

    let workers: Vec<JoinHandle<(u64, bool)>> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Distinct k-axis per client — no accidental dedup here.
                let request = SweepRequest::new()
                    .scenario("slow")
                    .axis(
                        "k",
                        (1..=4)
                            .map(|k| ParamValue::U64(k + 100 * i as u64))
                            .collect::<Vec<ParamValue>>(),
                    )
                    .with_seeds(2);
                let receipt = client.submit(&request).expect("submit");
                let cancels = i % 2 == 0;
                if cancels {
                    client.cancel(receipt.id).expect("cancel");
                }
                // Status polling must never error mid-flight.
                let status = client.status(receipt.id).expect("status");
                assert_eq!(status.id, receipt.id);
                let terminal = client.wait(receipt.id).expect("wait");
                if cancels {
                    assert!(
                        matches!(terminal.status, SweepStatus::Cancelled),
                        "client {i} cancelled but ended {}",
                        terminal.status
                    );
                } else {
                    assert!(
                        matches!(terminal.status, SweepStatus::Done),
                        "client {i} ended {}",
                        terminal.status
                    );
                    assert!(terminal.artifact.is_some());
                }
                (receipt.id, cancels)
            })
        })
        .collect();

    let outcomes: Vec<(u64, bool)> = workers
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let mut ids: Vec<u64> = outcomes.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CLIENTS, "request ids must be distinct");

    let mut client = Client::connect(addr).expect("connect");
    let listed = client.list().expect("list");
    for (id, cancelled) in &outcomes {
        let row = listed
            .iter()
            .find(|r| r.id == *id)
            .unwrap_or_else(|| panic!("request {id} missing from list"));
        if *cancelled {
            assert!(matches!(row.status, SweepStatus::Cancelled));
        } else {
            assert!(matches!(row.status, SweepStatus::Done));
        }
    }
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// Two clients firing the *same* request concurrently: exactly one
/// executes, the other rides along on the same id and both get the same
/// bytes.
#[test]
fn identical_concurrent_requests_share_one_execution() {
    let (addr, server) = serve(sleepy_registry(), ServiceConfig::new().with_threads(2));
    let request = SweepRequest::new()
        .scenario("slow")
        .axis(
            "k",
            (1..=6).map(ParamValue::U64).collect::<Vec<ParamValue>>(),
        )
        .with_seeds(2);

    let racers: Vec<JoinHandle<(u64, bool, String)>> = (0..2)
        .map(|_| {
            let request = request.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let receipt = client.submit(&request).expect("submit");
                let response = client.wait(receipt.id).expect("wait");
                (
                    receipt.id,
                    receipt.deduped,
                    response.artifact.expect("artifact"),
                )
            })
        })
        .collect();
    let outcomes: Vec<(u64, bool, String)> = racers
        .into_iter()
        .map(|h| h.join().expect("racer"))
        .collect();

    assert_eq!(outcomes[0].0, outcomes[1].0, "racers must share one id");
    assert_eq!(
        outcomes.iter().filter(|(_, deduped, _)| *deduped).count(),
        1,
        "exactly one racer must be the dedup rider"
    );
    assert_eq!(outcomes[0].2, outcomes[1].2, "artifact bytes must match");
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}

/// Warm re-submit over the wire: a second server generation on the same
/// cache directory answers the same request fully from cache.
#[test]
fn warm_resubmit_over_the_wire_is_fully_cache_served() {
    let dir = cache_dir("warm");
    let request = SweepRequest::new().scenario("fast").with_seeds(3);

    let cold_artifact = {
        let (addr, server) = serve(
            sleepy_registry(),
            ServiceConfig::new().with_threads(2).with_cache_dir(&dir),
        );
        let mut client = Client::connect(addr).expect("connect");
        let receipt = client.submit(&request).expect("cold submit");
        assert_eq!(receipt.cache_hits, 0);
        let artifact = client
            .wait(receipt.id)
            .expect("cold wait")
            .artifact
            .expect("artifact");
        client.shutdown().expect("shutdown");
        server.join().expect("server thread");
        artifact
    };

    let (addr, server) = serve(
        sleepy_registry(),
        ServiceConfig::new().with_threads(2).with_cache_dir(&dir),
    );
    let mut client = Client::connect(addr).expect("connect");
    let receipt = client.submit(&request).expect("warm submit");
    assert_eq!(
        receipt.cache_hits, receipt.total_jobs,
        "warm submit must be 100% cache-served"
    );
    assert!(
        matches!(receipt.status, SweepStatus::Done),
        "all-hit submit must come back terminal, got {}",
        receipt.status
    );
    assert_eq!(
        client
            .wait(receipt.id)
            .expect("warm wait")
            .artifact
            .expect("artifact"),
        cold_artifact,
        "cache-served artifact bytes diverged across server generations"
    );
    client.shutdown().expect("shutdown");
    server.join().expect("server thread");
}
