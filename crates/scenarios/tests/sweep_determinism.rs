//! Sweep determinism: a parallel `SweepRunner` (threads = 4) must produce
//! bit-identical per-(point, seed) metrics to a serial run (threads = 1),
//! for arbitrary seed lists and grids. Worker threads only decide *when* a
//! job runs; each job owns its own `Simulation`, so *what* it computes is a
//! pure function of `(params, seed)`.

use proptest::prelude::*;
use scenarios::{Registry, SweepGrid, SweepRunner};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial(
        seed_base in 0u64..1_000_000,
        n_seeds in 1usize..4,
        threads in 2usize..6,
    ) {
        let registry = Registry::standard();
        let scenario = registry.get("fig09_cpu_sharing").expect("registered");
        let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| seed_base + i).collect();
        let grid = SweepGrid::new().axis("reps", vec![3u64, 6]);

        let serial = SweepRunner::new(1, seeds.clone()).run(scenario, &grid);
        let parallel = SweepRunner::new(threads, seeds).run(scenario, &grid);
        prop_assert!(
            serial.bits_eq(&parallel),
            "threads={threads} diverged from serial"
        );
    }

    #[test]
    fn distinct_seeds_yield_distinct_noise(seed in 0u64..1_000_000) {
        // The noisy scenarios actually consume the seed: two different seeds
        // must not produce identical metrics (else CIs would be meaningless).
        let registry = Registry::standard();
        let scenario = registry.get("fig09_cpu_sharing").expect("registered");
        let result = SweepRunner::new(2, vec![seed, seed + 1]).run(scenario, &SweepGrid::new());
        let point = &result.points[0];
        prop_assert!(!point.per_seed[0].1.bits_eq(&point.per_seed[1].1));
    }
}

/// The engine-level half of the property: an identical simulation driven on
/// two different worker threads produces the identical event trace.
#[test]
fn simulation_trace_is_thread_invariant() {
    use des::{SimTime, Simulation};
    use std::sync::{Arc, Mutex};

    fn trace_on_worker(seed: u64) -> Vec<(u64, u64)> {
        std::thread::spawn(move || {
            let mut sim = Simulation::new(seed);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..50 {
                let log = Arc::clone(&log);
                let mut rng = sim.stream(&format!("gen{i}"));
                let at = SimTime::from_nanos(rng.u64_range(0..10_000));
                sim.schedule_at(at, move |sim| {
                    log.lock()
                        .unwrap()
                        .push((sim.now().as_nanos(), sim.events_executed()));
                });
            }
            sim.run();
            let v = log.lock().unwrap().clone();
            v
        })
        .join()
        .expect("worker")
    }

    assert_eq!(trace_on_worker(11), trace_on_worker(11));
    assert_ne!(trace_on_worker(11), trace_on_worker(12));
}
