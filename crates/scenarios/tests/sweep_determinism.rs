//! Sweep determinism: a parallel `SweepRunner` (threads = 4) must produce
//! bit-identical per-(point, seed) metrics to a serial run (threads = 1),
//! for arbitrary seed lists and grids. Worker threads only decide *when* a
//! job runs; each job owns its own `Simulation`, so *what* it computes is a
//! pure function of `(params, seed)`.

use proptest::prelude::*;
use scenarios::{Registry, SweepGrid, SweepRunner};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial(
        seed_base in 0u64..1_000_000,
        n_seeds in 1usize..4,
        threads in 2usize..6,
    ) {
        let registry = Registry::standard();
        let scenario = registry.get("fig09_cpu_sharing").expect("registered");
        let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| seed_base + i).collect();
        let grid = SweepGrid::new().axis("reps", vec![3u64, 6]);

        let serial = SweepRunner::new(1, seeds.clone()).run(scenario, &grid);
        let parallel = SweepRunner::new(threads, seeds).run(scenario, &grid);
        prop_assert!(
            serial.bits_eq(&parallel),
            "threads={threads} diverged from serial"
        );
    }

    #[test]
    fn distinct_seeds_yield_distinct_noise(seed in 0u64..1_000_000) {
        // The noisy scenarios actually consume the seed: two different seeds
        // must not produce identical metrics (else CIs would be meaningless).
        let registry = Registry::standard();
        let scenario = registry.get("fig09_cpu_sharing").expect("registered");
        let result = SweepRunner::new(2, vec![seed, seed + 1]).run(scenario, &SweepGrid::new());
        let point = &result.points[0];
        prop_assert!(!point.per_seed[0].1.bits_eq(&point.per_seed[1].1));
    }
}

/// A scenario that leans on everything the calendar-queue engine promises
/// the runner: `Simulation: Send` (jobs run inside worker threads), exact
/// `events_pending` under cancellation, `run_until` deadline semantics, and
/// far-future (overflow-rung) timers that are renewed — i.e. cancelled and
/// rescheduled — on every tick.
#[test]
fn sweep_with_cancellation_heavy_scenario_is_deterministic() {
    use des::{EventId, SimTime, Simulation};
    use scenarios::{Metrics, Params, Scenario};
    use std::sync::{Arc, Mutex};

    struct LeaseChurn;

    impl Scenario for LeaseChurn {
        fn name(&self) -> &'static str {
            "lease_churn_probe"
        }
        fn title(&self) -> &'static str {
            "cancellation-heavy pending-count probe"
        }
        fn default_params(&self) -> Params {
            Params::new().with("ticks", 200u64)
        }
        fn run(&self, sim: &mut Simulation, params: &Params) -> Metrics {
            let ticks = params.u64("ticks", 200);
            let expiries = Arc::new(Mutex::new(0u64));
            // A lease-expiry timer far in the future, renewed on every tick:
            // the cancel-reschedule churn the arena makes O(1).
            let timer: Arc<Mutex<Option<EventId>>> = Arc::new(Mutex::new(None));
            fn tick(
                sim: &mut Simulation,
                remaining: u64,
                timer: Arc<Mutex<Option<EventId>>>,
                expiries: Arc<Mutex<u64>>,
            ) {
                if let Some(old) = timer.lock().unwrap().take() {
                    assert!(sim.cancel(old), "renewed timer was still pending");
                }
                let e2 = Arc::clone(&expiries);
                let id = sim.schedule_after(SimTime::from_secs(3600), move |_| {
                    *e2.lock().unwrap() += 1;
                });
                *timer.lock().unwrap() = Some(id);
                if remaining > 0 {
                    let mut rng = sim.stream(&format!("tick{remaining}"));
                    let dt = SimTime::from_micros(1 + rng.u64_range(0..50));
                    let t2 = Arc::clone(&timer);
                    let e3 = Arc::clone(&expiries);
                    sim.schedule_after(dt, move |sim| tick(sim, remaining - 1, t2, e3));
                }
            }
            tick(sim, ticks, Arc::clone(&timer), Arc::clone(&expiries));
            sim.run_until(SimTime::from_secs(60));
            let pending = sim.events_pending();
            let mut m = Metrics::new();
            m.push("expiries", *expiries.lock().unwrap() as f64);
            m.push("pending_after_horizon", pending as f64);
            m.push("executed", sim.events_executed() as f64);
            m
        }
    }

    let serial = SweepRunner::new(1, vec![5, 6, 7]).run(&LeaseChurn, &SweepGrid::new());
    let parallel = SweepRunner::new(4, vec![5, 6, 7]).run(&LeaseChurn, &SweepGrid::new());
    assert!(
        serial.bits_eq(&parallel),
        "cancellation-heavy scenario diverged"
    );
    for (_, m) in &serial.points[0].per_seed {
        assert_eq!(
            m.get("expiries"),
            Some(0.0),
            "renewed lease timers must never fire"
        );
        assert_eq!(
            m.get("pending_after_horizon"),
            Some(1.0),
            "exactly the final renewed timer remains pending"
        );
    }
}

/// Work-stealing under heavy job-length skew: a sweep whose longest point
/// does ~400× the work of its shortest (the fig01-vs-everything-else shape
/// that motivates LPT ordering) must still be bit-identical to serial, both
/// with the cost-table order misled by wrong priors and with input order.
/// Stealing moves jobs between workers *while* their siblings execute long
/// traces — exactly the interleaving the lock-free deque must get right.
#[test]
fn work_stealing_is_bit_identical_under_job_length_skew() {
    use des::{SimTime, Simulation};
    use scenarios::{CostTable, JobOrder, Metrics, Params, Scenario};

    struct Skewed;

    impl Scenario for Skewed {
        fn name(&self) -> &'static str {
            "skewed_probe"
        }
        fn title(&self) -> &'static str {
            "job lengths spanning two orders of magnitude"
        }
        fn default_params(&self) -> Params {
            Params::new().with("events", 10u64)
        }
        fn run(&self, sim: &mut Simulation, params: &Params) -> Metrics {
            let events = params.u64("events", 10);
            // Real simulated work, proportional to the axis: every event
            // draws from a seed-derived stream, so the final digest is a
            // pure function of (params, seed) and any cross-job state leak
            // or slot-routing bug shows up as a bitwise mismatch.
            let acc = std::sync::Arc::new(std::sync::Mutex::new(0.0f64));
            for i in 0..events {
                let acc = std::sync::Arc::clone(&acc);
                let mut rng = sim.stream(&format!("e{i}"));
                let dt = SimTime::from_nanos(1 + rng.u64_range(0..1000));
                let draw = rng.f64();
                sim.schedule_after(dt, move |_| {
                    *acc.lock().unwrap() += draw;
                });
            }
            sim.run();
            let mut m = Metrics::new();
            m.push("sum", *acc.lock().unwrap());
            m.push("executed", sim.events_executed() as f64);
            m
        }
    }

    let grid = SweepGrid::new().axis("events", vec![2000u64, 5, 800, 1, 400, 50]);
    let seeds = vec![42, 43, 44];
    let serial = SweepRunner::new(1, seeds.clone()).run(&Skewed, &grid);

    // Misleading priors: claim the shortest job is by far the longest, so
    // LPT starts the sweep in the worst possible order.
    let mut wrong_priors = CostTable::new();
    wrong_priors.record("skewed_probe|events=1", 1e6);
    wrong_priors.record("skewed_probe|events=2000", 1e-9);

    for threads in [2, 4, 8] {
        let stolen = SweepRunner::new(threads, seeds.clone())
            .with_cost_table(wrong_priors.clone())
            .run(&Skewed, &grid);
        assert!(
            serial.bits_eq(&stolen),
            "threads={threads} with misleading cost priors diverged"
        );
        let input_order = SweepRunner::new(threads, seeds.clone())
            .with_order(JobOrder::Input)
            .run(&Skewed, &grid);
        assert!(
            serial.bits_eq(&input_order),
            "threads={threads} input order diverged"
        );
    }
}

/// The engine-level half of the property: an identical simulation driven on
/// two different worker threads produces the identical event trace.
#[test]
fn simulation_trace_is_thread_invariant() {
    use des::{SimTime, Simulation};
    use std::sync::{Arc, Mutex};

    fn trace_on_worker(seed: u64) -> Vec<(u64, u64)> {
        std::thread::spawn(move || {
            let mut sim = Simulation::new(seed);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..50 {
                let log = Arc::clone(&log);
                let mut rng = sim.stream(&format!("gen{i}"));
                let at = SimTime::from_nanos(rng.u64_range(0..10_000));
                sim.schedule_at(at, move |sim| {
                    log.lock()
                        .unwrap()
                        .push((sim.now().as_nanos(), sim.events_executed()));
                });
            }
            sim.run();
            let v = log.lock().unwrap().clone();
            v
        })
        .join()
        .expect("worker")
    }

    assert_eq!(trace_on_worker(11), trace_on_worker(11));
    assert_ne!(trace_on_worker(11), trace_on_worker(12));
}
