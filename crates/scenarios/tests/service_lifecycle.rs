//! In-process contract of the what-if sweep service: artifacts bit-identical
//! to the direct runner path, warm re-submits served entirely from the
//! cache without touching the pool, identical in-flight requests coalesced
//! onto one id, cancellation dropping pending work promptly, and — the
//! head-of-line guarantee — a short request completing while a long one is
//! still running on a saturated pool.

use scenarios::service::{Service, ServiceConfig};
use scenarios::{
    Metrics, ParamValue, Params, Registry, Scenario, SweepRequest, SweepRunner, SweepStatus,
    SweepSuite,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fresh per-test cache directory under cargo's integration-test tmpdir.
fn cache_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "service-cache-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A scenario that burns a configurable wall-clock per job — the knob the
/// interleaving and cancellation tests turn.
struct Sleepy {
    name: &'static str,
    millis: u64,
}

impl Scenario for Sleepy {
    fn name(&self) -> &'static str {
        self.name
    }
    fn title(&self) -> &'static str {
        "sleeps then reports"
    }
    fn default_params(&self) -> Params {
        Params::new().with("k", 1u64)
    }
    fn run(&self, sim: &mut des::Simulation, params: &Params) -> Metrics {
        std::thread::sleep(Duration::from_millis(self.millis));
        let mut m = Metrics::new();
        m.push("k", params.u64("k", 1) as f64);
        m.push("draw", sim.stream("draw").f64());
        m
    }
}

fn sleepy_registry() -> Registry {
    let mut registry = Registry::new();
    registry.register(Box::new(Sleepy {
        name: "slow",
        millis: 25,
    }));
    registry.register(Box::new(Sleepy {
        name: "fast",
        millis: 1,
    }));
    registry
}

#[test]
fn service_artifact_is_bit_identical_to_runner() {
    let request = SweepRequest::new()
        .scenario("tab03_idle_node")
        .scenario("fig07_latency")
        .axis(
            "reps",
            vec![ParamValue::parse("40"), ParamValue::parse("80")],
        )
        .lenient()
        .with_seeds(2);

    // Direct runner path, exactly as the CLI ran before the service.
    let registry = Registry::standard();
    let validated = request.validate(&registry).expect("valid request");
    let runner = SweepRunner::new(2, validated.seeds.clone());
    let results = runner
        .try_run_suite(&validated.resolve(&registry))
        .expect("runner sweep succeeds");
    let direct = SweepSuite {
        seeds: validated.seeds.clone(),
        results,
    }
    .artifact_json();

    // Service path: submit, wait, take the server-rendered artifact.
    let service = Service::start(Registry::standard(), ServiceConfig::new().with_threads(3))
        .expect("service starts");
    let submission = service.submit(&request).expect("submit succeeds");
    let response = service.wait(submission.id).expect("wait succeeds");
    assert!(matches!(response.status, SweepStatus::Done));
    let served = response.artifact.expect("done response carries artifact");

    assert_eq!(
        served, direct,
        "service artifact bytes diverged from the direct runner path"
    );
}

#[test]
fn warm_resubmit_is_all_hits_and_finalizes_inline() {
    let dir = cache_dir("warm");
    let request = SweepRequest::new().scenario("fast").with_seeds(2);

    let cold_artifact = {
        let service = Service::start(
            sleepy_registry(),
            ServiceConfig::new().with_threads(2).with_cache_dir(&dir),
        )
        .expect("cold service starts");
        let submission = service.submit(&request).expect("cold submit");
        assert_eq!(submission.cache_hits, 0, "cold submit must miss");
        let response = service.wait(submission.id).expect("cold wait");
        assert!(matches!(response.status, SweepStatus::Done));
        response.artifact.expect("artifact")
    };

    // A fresh service over the same cache dir: the re-submit must be
    // answered entirely from the cache — Done before wait is ever called,
    // zero pool jobs, identical bytes.
    let service = Service::start(
        sleepy_registry(),
        ServiceConfig::new().with_threads(2).with_cache_dir(&dir),
    )
    .expect("warm service starts");
    let submission = service.submit(&request).expect("warm submit");
    assert_eq!(
        submission.cache_hits, submission.total_jobs,
        "warm submit must be 100% cache-served"
    );
    assert!(
        matches!(submission.status, SweepStatus::Done),
        "all-hit request must come back already terminal, got {}",
        submission.status
    );
    let stats = service.cache_stats().expect("cache attached");
    assert_eq!(stats.misses, 0, "warm service saw a miss");
    let response = service.wait(submission.id).expect("warm wait");
    assert_eq!(
        response.artifact.expect("artifact"),
        cold_artifact,
        "cache-served artifact bytes diverged from the live run"
    );
}

#[test]
fn identical_inflight_requests_coalesce_onto_one_id() {
    let service = Service::start(sleepy_registry(), ServiceConfig::new().with_threads(1))
        .expect("service starts");
    let request = SweepRequest::new()
        .scenario("slow")
        .axis(
            "k",
            vec![
                ParamValue::parse("1"),
                ParamValue::parse("2"),
                ParamValue::parse("3"),
            ],
        )
        .with_seeds(2);

    let first = service.submit(&request).expect("first submit");
    assert!(!first.deduped);
    let second = service.submit(&request).expect("second submit");
    assert!(second.deduped, "identical in-flight request must coalesce");
    assert_eq!(second.id, first.id);

    // A *different* request must not coalesce.
    let other = service
        .submit(&SweepRequest::new().scenario("fast"))
        .expect("different submit");
    assert_ne!(other.id, first.id);

    let done = service.wait(first.id).expect("wait");
    assert!(matches!(done.status, SweepStatus::Done));

    // Once terminal, the same request text is live again: a re-submit
    // gets a fresh id (and, with no cache attached, fresh work).
    let third = service.submit(&request).expect("post-terminal submit");
    assert!(!third.deduped, "terminal requests must not dedup");
    assert_ne!(third.id, first.id);
    service.wait(third.id).expect("wait third");
}

#[test]
fn cancel_drops_pending_work_promptly() {
    let service = Service::start(sleepy_registry(), ServiceConfig::new().with_threads(1))
        .expect("service starts");
    // 8 points × 2 seeds × 25ms on one thread ≈ 400ms if run to the end.
    let request = SweepRequest::new()
        .scenario("slow")
        .axis(
            "k",
            (1..=8).map(ParamValue::U64).collect::<Vec<ParamValue>>(),
        )
        .with_seeds(2);

    let submission = service.submit(&request).expect("submit");
    let cancelled = service.cancel(submission.id).expect("cancel");
    assert!(
        matches!(
            cancelled.status,
            SweepStatus::Cancelled | SweepStatus::Queued | SweepStatus::Running { .. }
        ),
        "unexpected post-cancel status {}",
        cancelled.status
    );
    let response = service.wait(submission.id).expect("wait");
    assert!(
        matches!(response.status, SweepStatus::Cancelled),
        "cancelled request must terminate as cancelled, got {}",
        response.status
    );
    assert!(
        response.artifact.is_none(),
        "cancelled sweep has no artifact"
    );
    assert!(
        service
            .list()
            .iter()
            .any(|r| r.id == submission.id && matches!(r.status, SweepStatus::Cancelled)),
        "list must show the cancelled request"
    );
}

/// The interleaving guarantee from the issue: with every worker busy on a
/// long sweep, a short request submitted behind it still completes while
/// the long one is running — the per-request window keeps the long sweep
/// from owning the queue.
#[test]
fn short_request_completes_while_long_request_still_runs() {
    let service = Service::start(sleepy_registry(), ServiceConfig::new().with_threads(2))
        .expect("service starts");

    // 20 points × 2 seeds × 25ms / 2 threads ≈ 500ms of long work.
    let long = service
        .submit(
            &SweepRequest::new()
                .scenario("slow")
                .axis(
                    "k",
                    (1..=20).map(ParamValue::U64).collect::<Vec<ParamValue>>(),
                )
                .with_seeds(2),
        )
        .expect("long submit");
    // Let the pool actually occupy both workers with long jobs.
    std::thread::sleep(Duration::from_millis(10));

    let short = service
        .submit(&SweepRequest::new().scenario("fast").with_seeds(2))
        .expect("short submit");
    let response = service.wait(short.id).expect("short wait");
    assert!(
        matches!(response.status, SweepStatus::Done),
        "short request failed: {}",
        response.status
    );

    let long_status = service.status(long.id).expect("long status");
    assert!(
        !long_status.status.is_terminal(),
        "long request already {} — the interleaving claim is untestable; \
         speed up the short request or lengthen the long one",
        long_status.status
    );
    service.cancel(long.id).expect("cancel long");
    service.wait(long.id).expect("drain long");
}

#[test]
fn unknown_request_id_is_a_structured_error() {
    let service = Service::start(sleepy_registry(), ServiceConfig::new().with_threads(1))
        .expect("service starts");
    let err = service.status(999).expect_err("unknown id must error");
    assert!(
        err.to_string().contains("999"),
        "error must name the offending id: {err}"
    );
    assert!(service.cancel(999).is_err());
    assert!(service.wait(999).is_err());
}

#[test]
fn failed_jobs_surface_in_the_terminal_status() {
    struct Panics;
    impl Scenario for Panics {
        fn name(&self) -> &'static str {
            "panics"
        }
        fn title(&self) -> &'static str {
            "always panics"
        }
        fn run(&self, _sim: &mut des::Simulation, _params: &Params) -> Metrics {
            panic!("scripted failure");
        }
    }
    let mut registry = Registry::new();
    registry.register(Box::new(Panics));
    let service =
        Service::start(registry, ServiceConfig::new().with_threads(2)).expect("service starts");
    let submission = service
        .submit(&SweepRequest::new().scenario("panics").with_seeds(2))
        .expect("submit");
    let response = service.wait(submission.id).expect("wait");
    match response.status {
        SweepStatus::Failed { message } => {
            assert!(
                message.contains("scripted failure"),
                "failure message must carry the panic payload: {message}"
            );
        }
        other => panic!("expected failed status, got {other}"),
    }
}
