//! The sweep memoization cache's contract: a cache hit is
//! indistinguishable from a live run (bit-exact metrics, byte-identical
//! artifacts), hits never pollute the LPT cost table, concurrent sweeps
//! over one cache directory never tear or duplicate entries, and an
//! engine-salt bump invalidates — and garbage-collects — every prior
//! entry.

use proptest::prelude::*;
use scenarios::{
    engine_salt, job_key, Metrics, Params, ResultCache, Scenario, SweepGrid, SweepRunner,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh per-test cache directory under cargo's integration-test tmpdir.
fn cache_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "sweep-cache-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic scenario whose metrics depend on (params, seed) and
/// deliberately include the floats most likely to betray a formatting
/// round-trip: negative zero, a one-ULP offset, and a 17-significant-digit
/// accumulation.
struct Probe;

impl Scenario for Probe {
    fn name(&self) -> &'static str {
        "cache_probe"
    }
    fn title(&self) -> &'static str {
        "memoization probe"
    }
    fn default_params(&self) -> Params {
        Params::new().with("k", 1u64).with("x", 0.5)
    }
    fn run(&self, sim: &mut des::Simulation, params: &Params) -> Metrics {
        let k = params.u64("k", 1);
        let mut sum = 0.0f64;
        for i in 0..(k * 7 + 3) {
            sum += sim.stream(&format!("draw{i}")).f64() * params.f64("x", 0.5);
        }
        let mut m = Metrics::new();
        m.push("sum", sum);
        m.push("seed_draw", sim.stream("tail").f64());
        m.push("neg_zero", -0.0);
        m.push("ulp", f64::from_bits(sum.to_bits() + 1));
        m
    }
}

fn grid() -> SweepGrid {
    SweepGrid::new().axis("k", vec![1u64, 2, 3])
}

#[test]
fn warm_sweep_is_bit_identical_and_fully_cache_served() {
    let dir = cache_dir("roundtrip");
    let seeds = vec![42, 43];

    let cold_runner = SweepRunner::new(4, seeds.clone())
        .with_cache(ResultCache::open(&dir).expect("open cold cache"));
    let cold = cold_runner.run(&Probe, &grid());
    let cold_stats = cold_runner.cache_stats().expect("cache attached");
    assert_eq!(cold_stats.hits, 0);
    assert_eq!(cold_stats.misses, 6, "3 points x 2 seeds all simulated");
    assert_eq!(cold_stats.entries, 6, "every miss persisted at commit");

    let warm_runner = SweepRunner::new(4, seeds.clone())
        .with_cache(ResultCache::open(&dir).expect("open warm cache"));
    let warm = warm_runner.run(&Probe, &grid());
    let warm_stats = warm_runner.cache_stats().expect("cache attached");
    assert_eq!(warm_stats.hits, 6, "warm run must be 100% cache-served");
    assert_eq!(warm_stats.misses, 0);
    assert!(
        warm_stats.saved_secs >= 0.0 && warm_stats.saved_secs.is_finite(),
        "saved wall-clock is a finite credit"
    );

    // The acceptance bar: cache-served results are bit-exact to live ones,
    // so the emitted artifact cannot tell the difference.
    assert!(warm.bits_eq(&cold), "cached sweep diverged from live sweep");
    let live = SweepRunner::new(1, seeds).run(&Probe, &grid());
    assert!(
        live.bits_eq(&warm),
        "cached sweep diverged from serial live"
    );
}

#[test]
fn every_cached_metric_round_trips_bits_exactly() {
    let dir = cache_dir("bits");
    let seeds = vec![7, 8, 9];
    let runner =
        SweepRunner::new(2, seeds.clone()).with_cache(ResultCache::open(&dir).expect("open"));
    let live = runner.run(&Probe, &grid());

    // Reopen from disk and look every (point, seed) job up directly: the
    // stored metrics must be bits_eq to the live ones, metric by metric.
    let mut cache = ResultCache::open(&dir).expect("reopen");
    let salt = cache.salt().to_string();
    for point in &live.points {
        for (seed, live_metrics) in &point.per_seed {
            let key = job_key(&salt, "cache_probe", &point.params, *seed);
            let cached = cache.lookup(&key).unwrap_or_else(|| {
                panic!(
                    "missing cache entry for {} seed {seed}",
                    point.params.label()
                )
            });
            assert!(
                cached.bits_eq(live_metrics),
                "cached metrics for {} seed {seed} are not bit-exact",
                point.params.label()
            );
        }
    }
}

#[test]
fn cache_hits_record_no_cost_observations() {
    let dir = cache_dir("costs");
    let seeds = vec![42, 43];

    let cold =
        SweepRunner::new(2, seeds.clone()).with_cache(ResultCache::open(&dir).expect("open cold"));
    cold.run(&Probe, &grid());
    assert!(
        !cold.observed_costs().is_empty(),
        "cold run measures every point shape"
    );

    // The warm run executes nothing, so it must observe nothing: cache
    // hits would otherwise drag the CI-refreshed LPT cost table toward
    // zero and wreck longest-expected-first ordering.
    let warm = SweepRunner::new(2, seeds).with_cache(ResultCache::open(&dir).expect("open warm"));
    warm.run(&Probe, &grid());
    assert!(
        warm.observed_costs().is_empty(),
        "a fully cache-served sweep recorded cost observations: {:?}",
        warm.observed_costs()
    );
    assert_eq!(warm.cache_stats().expect("stats").misses, 0);
}

#[test]
fn salt_bump_invalidates_every_entry_and_garbage_collects() {
    let dir = cache_dir("salt");
    let seeds = vec![1, 2];
    let n_jobs = 6;

    let v1 = SweepRunner::new(2, seeds.clone())
        .with_cache(ResultCache::open_with_salt(&dir, "engine-v1").expect("open v1"));
    v1.run(&Probe, &grid());
    assert_eq!(v1.cache_stats().expect("stats").entries, n_jobs);

    // Same tree, bumped salt: every prior entry is ignored (full miss)...
    let v2 = SweepRunner::new(2, seeds.clone())
        .with_cache(ResultCache::open_with_salt(&dir, "engine-v2").expect("open v2"));
    v2.run(&Probe, &grid());
    let stats = v2.cache_stats().expect("stats");
    assert_eq!(stats.hits, 0, "salt bump must invalidate every entry");
    assert_eq!(stats.misses, n_jobs);
    assert_eq!(stats.stale_dropped, n_jobs, "old entries seen and skipped");

    // ...and the commit's index rewrite garbage-collects them.
    let index = std::fs::read_to_string(dir.join("index.v1.log")).expect("index");
    assert!(
        !index.contains("engine-v1"),
        "stale-salt entries survived the rewrite"
    );
    assert!(index.contains("engine-v2"));
    let reopened_v1 = ResultCache::open_with_salt(&dir, "engine-v1").expect("reopen v1");
    assert_eq!(reopened_v1.len(), 0, "v1 entries are gone, not just hidden");
    let reopened_v2 = ResultCache::open_with_salt(&dir, "engine-v2").expect("reopen v2");
    assert_eq!(reopened_v2.len(), n_jobs as usize);
}

#[test]
fn warm_cache_survives_bit_identical_engine_changes() {
    // The inverse contract of the salt-bump tests: an internal refactor
    // that provably keeps simulation outputs bit-identical (PR 9's indexed
    // scheduler: oracle property tests + an unchanged ci/trace_reference
    // artifact) ships with NO salt change, and caches populated before the
    // change keep hitting after it. The literal string below is the salt as
    // it stood before the scheduler was indexed; if engine_salt() drifts
    // from it, either a version/rev was bumped for a bit-identical change
    // (revert the bump) or semantics actually changed (then this test and
    // ci/trace_reference.json must be updated together, deliberately).
    let pre_change_salt = "des=0.1.0|cluster=0.1.0|scenarios=0.1.0|rev=1";
    assert_eq!(
        engine_salt(),
        pre_change_salt,
        "engine salt changed — bit-identical refactors must leave it alone"
    );

    let dir = cache_dir("warmsurvives");
    let seeds = vec![21, 22];
    // Populate the store under the pinned pre-change salt...
    let old = SweepRunner::new(2, seeds.clone())
        .with_cache(ResultCache::open_with_salt(&dir, pre_change_salt).expect("open pinned"));
    old.run(&Probe, &grid());
    assert_eq!(old.cache_stats().expect("stats").entries, 6);

    // ...and re-sweep under the wired engine_salt(): every entry must hit.
    let new = SweepRunner::new(2, seeds).with_cache(ResultCache::open(&dir).expect("open current"));
    new.run(&Probe, &grid());
    let stats = new.cache_stats().expect("stats");
    assert_eq!(stats.hits, 6, "pre-change entries must survive the upgrade");
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.stale_dropped, 0, "nothing may be treated as stale");
}

#[test]
fn engine_salt_bump_misses_against_a_real_version_salt() {
    // The wired salt: a cache populated under engine_salt() full-misses
    // once the salt gains a suffix — exactly what a des/cluster/scenarios
    // version bump or an ENGINE_SALT_REV bump does.
    let dir = cache_dir("realsalt");
    let seeds = vec![5];
    let current = SweepRunner::new(1, seeds.clone())
        .with_cache(ResultCache::open(&dir).expect("open current"));
    current.run(&Probe, &grid());
    assert_eq!(current.cache_stats().expect("stats").entries, 3);

    let bumped_salt = format!("{}+semantics-changed", engine_salt());
    let bumped = SweepRunner::new(1, seeds)
        .with_cache(ResultCache::open_with_salt(&dir, &bumped_salt).expect("open bumped"));
    bumped.run(&Probe, &grid());
    let stats = bumped.cache_stats().expect("stats");
    assert_eq!(stats.hits, 0, "version-salt bump must force a full miss");
    assert_eq!(stats.misses, 3);
}

#[test]
fn failed_sweeps_leave_recoverable_segments_not_a_corrupt_index() {
    struct Grenade;
    impl Scenario for Grenade {
        fn name(&self) -> &'static str {
            "cache_grenade"
        }
        fn title(&self) -> &'static str {
            "panics on k=2"
        }
        fn default_params(&self) -> Params {
            Params::new().with("k", 1u64)
        }
        fn run(&self, sim: &mut des::Simulation, params: &Params) -> Metrics {
            assert!(params.u64("k", 0) != 2, "boom");
            let mut m = Metrics::new();
            m.push("draw", sim.stream("d").f64());
            m
        }
    }

    let dir = cache_dir("failure");
    let failing = SweepRunner::new(2, vec![1]).with_cache(ResultCache::open(&dir).expect("open"));
    failing
        .try_run(&Grenade, &SweepGrid::new().axis("k", vec![1u64, 2, 3]))
        .expect_err("k=2 panics");
    // No commit happened: the index holds nothing yet, but the surviving
    // jobs' WAL segments are recovered at the next open.
    let recovered = ResultCache::open(&dir).expect("reopen");
    assert_eq!(
        recovered.len(),
        2,
        "k=1 and k=3 results recovered from write-ahead segments"
    );

    // The recovered entries serve a successful follow-up sweep's hits.
    let retry = SweepRunner::new(2, vec![1]).with_cache(recovered);
    retry.run(&Grenade, &SweepGrid::new().axis("k", vec![1u64, 3]));
    let stats = retry.cache_stats().expect("stats");
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Two sweeps over the same job set race on one cache directory across
    /// 2–8 worker threads each. Whatever the interleaving: both emit
    /// bit-identical results to serial, and the merged index ends up with
    /// exactly one well-formed line per job — no torn writes, no
    /// duplicates.
    #[test]
    fn concurrent_sweeps_never_tear_or_duplicate_cache_entries(
        seed_base in 0u64..100_000,
        threads_a in 2usize..9,
        threads_b in 2usize..9,
    ) {
        let dir = cache_dir("concurrent");
        let seeds: Vec<u64> = vec![seed_base, seed_base + 1];
        let grid = SweepGrid::new().axis("k", vec![1u64, 2, 3, 4]);
        let n_jobs = 8usize;

        let serial = SweepRunner::new(1, seeds.clone()).run(&Probe, &grid);

        let (res_a, res_b) = std::thread::scope(|scope| {
            let run = |threads: usize| {
                let dir = dir.clone();
                let seeds = seeds.clone();
                let grid = grid.clone();
                move || {
                    SweepRunner::new(threads, seeds)
                        .with_cache(ResultCache::open(&dir).expect("open"))
                        .run(&Probe, &grid)
                }
            };
            let a = scope.spawn(run(threads_a));
            let b = scope.spawn(run(threads_b));
            (a.join().expect("sweep a"), b.join().expect("sweep b"))
        });
        prop_assert!(res_a.bits_eq(&serial), "racing sweep A diverged");
        prop_assert!(res_b.bits_eq(&serial), "racing sweep B diverged");

        // The committed index: one parseable line per job, every key unique.
        let index = std::fs::read_to_string(dir.join("index.v1.log")).expect("index");
        let lines: Vec<&str> = index.lines().collect();
        prop_assert_eq!(lines.len(), n_jobs, "one line per job, no duplicates");
        for line in &lines {
            prop_assert!(line.starts_with("v1\t"), "malformed line: {line:?}");
        }
        let reloaded = ResultCache::open(&dir).expect("reopen");
        prop_assert_eq!(
            reloaded.len(),
            n_jobs,
            "every line parses back (torn lines would be dropped)"
        );

        // And the racing runs' combined WAL must leave nothing behind that
        // a warm sweep cannot serve: a third run is fully cache-served.
        let warm = SweepRunner::new(4, seeds).with_cache(reloaded);
        let warm_result = warm.run(&Probe, &grid);
        prop_assert!(warm_result.bits_eq(&serial));
        let stats = warm.cache_stats().expect("stats");
        prop_assert_eq!(stats.misses, 0, "warm run after the race must fully hit");
    }
}
