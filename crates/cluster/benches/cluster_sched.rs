//! Scheduler hot-path throughput: indexed `Cluster` vs the frozen scan
//! oracle (`cluster::reference::RefCluster`), driven like-for-like through
//! one arrival/completion event loop. Requires `--features oracle`:
//!
//! ```text
//! cargo bench -p cluster --features oracle
//! ```
//!
//! Measurement protocol matches `BENCH_event_loop`: criterion smoke cases
//! keep `--test` runs honest, the measured pass takes the median of three
//! full replays for every committed metric (the scan oracle gets a single
//! replay on non-headline streams — see the measured-pass comment), and the
//! JSON this bench writes
//! (`target/figures/BENCH_cluster_sched.json`, override with
//! `BENCH_CLUSTER_SCHED_JSON`) is the *authoritative* throughput record —
//! the committed repo-root `BENCH_cluster_sched.json` is a snapshot of it
//! and CI's `perf-gate` job compares a fresh run against
//! `ci/perf_baseline.json`. Before any timing, every workload is replayed
//! once on both implementations and the full started-job sequences must
//! hash identically: the speedup column is only meaningful because the two
//! schedulers provably make the same decisions.

use cluster::reference::RefCluster;
use cluster::{Cluster, JobId, JobSpec, NodeResources};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use des::{RngStream, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// One synthetic submission: arrival time, spec, trace-side actual runtime.
struct Arrival {
    at: SimTime,
    spec: JobSpec,
    actual: SimTime,
    /// Backfill/cancel-heavy stream only: cancel the job submitted this many
    /// arrivals earlier (if it is still waiting) when this job arrives.
    cancel_back: Option<usize>,
}

/// Loaded-but-stable exclusive+shared mix: small jobs dominate (keeping many
/// placement decisions per second), occasional wide jobs block the head and
/// force the backfill path. The interarrival time is derived from the mean
/// node-seconds the mix actually demands so offered load is ~75% of nominal
/// capacity at every cluster size: high enough that the queue stays occupied
/// and backfill fires constantly, low enough that queue depth stays bounded.
/// (An oversubscribed stream is useless as a benchmark: the pending queue —
/// and with it per-event cost — grows without bound on *both*
/// implementations, measuring queue depth rather than scheduler work.)
fn workload(nodes: usize, jobs: usize, seed: u64, cancel_heavy: bool) -> Vec<Arrival> {
    let mut rng = RngStream::from_seed(seed);
    let wide_lo = (nodes as u64 / 16).max(2);
    let wide_hi = (nodes as u64 / 8).max(4);
    // Means of the distributions drawn below; actual runtime is walltime ×
    // U(0.3, 1.0), i.e. 0.65 × mean walltime. Wide-job demand scales with
    // the cluster, so it must be part of the load accounting.
    let wide_node_secs = (wide_lo + wide_hi) as f64 / 2.0 * (0.65 * 5_500.0);
    let small_node_secs = (19.0 / 7.0) * (0.65 * 1_260.0);
    let node_secs_per_job = 0.02 * wide_node_secs + 0.98 * small_node_secs;
    let mean_interarrival_s = node_secs_per_job / (nodes as f64 * 0.75);
    let mut now = 0.0f64;
    (0..jobs)
        .map(|i| {
            now += rng.exponential(mean_interarrival_s);
            let wide = rng.chance(0.02);
            let n = if wide {
                rng.u64_range(wide_lo..wide_hi + 1) as u32
            } else {
                [1u64, 1, 1, 2, 2, 4, 8][rng.u64_range(0..7) as usize] as u32
            };
            let walltime_s = if wide {
                rng.u64_range(3_000..8_000)
            } else {
                rng.u64_range(120..2_400)
            };
            let actual_s = (walltime_s as f64 * (0.3 + 0.7 * rng.f64())) as u64;
            let shared = !wide && rng.chance(0.15);
            let per_node = if shared {
                NodeResources {
                    cores: 9,
                    memory_mb: 16 * 1024,
                    gpus: 0,
                }
            } else {
                NodeResources::daint_mc()
            };
            let spec = if shared {
                JobSpec::shared(n, per_node, SimTime::from_secs(walltime_s), "bench")
            } else {
                JobSpec::exclusive(n, per_node, SimTime::from_secs(walltime_s), "bench")
            };
            Arrival {
                at: SimTime::from_secs(now as u64),
                spec,
                actual: SimTime::from_secs(actual_s.max(1)),
                cancel_back: (cancel_heavy && i % 3 == 0 && i >= 16).then_some(13),
            }
        })
        .collect()
}

/// The scheduler surface the replay driver needs; implemented by both the
/// indexed production cluster and the scan oracle so one driver times both.
trait Sched {
    fn submit(&mut self, spec: JobSpec, actual: SimTime, now: SimTime) -> JobId;
    fn try_schedule(&mut self, now: SimTime) -> (Vec<JobId>, Vec<SimTime>);
    fn finish(&mut self, id: JobId, now: SimTime);
    fn cancel(&mut self, id: JobId, now: SimTime) -> bool;
    fn actual_runtime(&self, id: JobId) -> SimTime;
}

impl Sched for Cluster {
    fn submit(&mut self, spec: JobSpec, actual: SimTime, now: SimTime) -> JobId {
        Cluster::submit(self, spec, actual, now)
    }
    fn try_schedule(&mut self, now: SimTime) -> (Vec<JobId>, Vec<SimTime>) {
        Cluster::try_schedule(self, now)
    }
    fn finish(&mut self, id: JobId, now: SimTime) {
        Cluster::finish(self, id, now).expect("driver only finishes running jobs");
    }
    fn cancel(&mut self, id: JobId, now: SimTime) -> bool {
        Cluster::cancel(self, id, now).is_ok()
    }
    fn actual_runtime(&self, id: JobId) -> SimTime {
        self.job(id).expect("exists").actual_runtime
    }
}

impl Sched for RefCluster {
    fn submit(&mut self, spec: JobSpec, actual: SimTime, now: SimTime) -> JobId {
        RefCluster::submit(self, spec, actual, now)
    }
    fn try_schedule(&mut self, now: SimTime) -> (Vec<JobId>, Vec<SimTime>) {
        RefCluster::try_schedule(self, now)
    }
    fn finish(&mut self, id: JobId, now: SimTime) {
        RefCluster::finish(self, id, now).expect("driver only finishes running jobs");
    }
    fn cancel(&mut self, id: JobId, now: SimTime) -> bool {
        RefCluster::cancel(self, id, now).is_ok()
    }
    fn actual_runtime(&self, id: JobId) -> SimTime {
        self.job(id).expect("exists").actual_runtime
    }
}

/// Replay the whole stream through arrivals/completions/cancellations and
/// return an order-sensitive FNV hash of every `(event index, started job)`
/// pair — the bit-identity witness compared across implementations. The
/// driver keeps its own completion heap so the replay cost is the
/// *scheduler's*, not an O(running) `next_completion` scan per event.
fn replay<S: Sched>(cluster: &mut S, stream: &[Arrival]) -> u64 {
    let mut completions: BinaryHeap<Reverse<(SimTime, JobId)>> = BinaryHeap::new();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut started_events = 0u64;
    let fold = |h: &mut u64, v: u64| {
        *h ^= v;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let mut on_started =
        |started: Vec<JobId>,
         now: SimTime,
         cluster: &S,
         completions: &mut BinaryHeap<Reverse<(SimTime, JobId)>>| {
            for id in started {
                started_events += 1;
                fold(&mut hash, started_events);
                fold(&mut hash, id.0);
                fold(&mut hash, now.as_nanos());
                completions.push(Reverse((now + cluster.actual_runtime(id), id)));
            }
        };
    let mut submitted: Vec<JobId> = Vec::with_capacity(stream.len());
    let mut live: Vec<bool> = Vec::with_capacity(stream.len());
    for arrival in stream {
        // Drain completions that precede this arrival.
        while let Some(&Reverse((t, id))) = completions.peek() {
            if t > arrival.at {
                break;
            }
            completions.pop();
            if !live[id.0 as usize - 1] {
                continue; // cancelled while running; nodes already released
            }
            cluster.finish(id, t);
            live[id.0 as usize - 1] = false;
            let (started, _) = cluster.try_schedule(t);
            on_started(started, t, cluster, &mut completions);
        }
        if let Some(back) = arrival.cancel_back {
            let victim = submitted[submitted.len() - back];
            if live[victim.0 as usize - 1] && cluster.cancel(victim, arrival.at) {
                live[victim.0 as usize - 1] = false;
                let (started, _) = cluster.try_schedule(arrival.at);
                on_started(started, arrival.at, cluster, &mut completions);
            }
        }
        let id = cluster.submit(arrival.spec.clone(), arrival.actual, arrival.at);
        debug_assert_eq!(id.0 as usize, submitted.len() + 1);
        submitted.push(id);
        live.push(true);
        let (started, _) = cluster.try_schedule(arrival.at);
        on_started(started, arrival.at, cluster, &mut completions);
    }
    // Drain the tail so every run does the same total work.
    while let Some(Reverse((t, id))) = completions.pop() {
        if !live[id.0 as usize - 1] {
            continue;
        }
        cluster.finish(id, t);
        live[id.0 as usize - 1] = false;
        let (started, _) = cluster.try_schedule(t);
        on_started(started, t, cluster, &mut completions);
    }
    fold(&mut hash, started_events);
    hash
}

fn indexed_cluster(nodes: usize) -> Cluster {
    Cluster::homogeneous(nodes, NodeResources::daint_mc())
}

fn scan_cluster(nodes: usize) -> RefCluster {
    RefCluster::homogeneous(nodes, NodeResources::daint_mc())
}

/// Run `n` full replays, returning the decision hash (asserted identical
/// across runs — the replay is deterministic) and the median jobs/sec.
/// Every timed run doubles as an equivalence sample: callers compare the
/// returned hashes across implementations, so no replay is ever spent on
/// verification alone. Per-run progress goes to stderr (a full scan replay
/// on 8k nodes takes minutes; silence would be indistinguishable from a
/// hang).
fn timed_replays<S: Sched>(
    n: usize,
    mut make: impl FnMut() -> S,
    stream: &[Arrival],
    label: &str,
) -> (u64, f64) {
    let mut rates: Vec<f64> = Vec::with_capacity(n);
    let mut hash: Option<u64> = None;
    for i in 0..n {
        let mut c = make();
        let t0 = Instant::now();
        let h = black_box(replay(&mut c, stream));
        let secs = t0.elapsed().as_secs_f64();
        eprintln!("[cluster_sched] {label} run {}/{n}: {secs:.1}s", i + 1);
        match hash {
            None => hash = Some(h),
            Some(prev) => assert_eq!(prev, h, "{label}: replay is not deterministic"),
        }
        rates.push(stream.len() as f64 / secs);
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    (hash.expect("n >= 1"), rates[rates.len() / 2])
}

fn bench_cluster_sched(c: &mut Criterion) {
    // Smoke cases: small enough for `cargo bench -- --test`, and the
    // bit-identity witness runs on every invocation, smoke or measured.
    let smoke = workload(256, 2_000, 3, false);
    let smoke_cancel = workload(256, 2_000, 5, true);
    for (name, stream) in [("steady", &smoke), ("cancel_backfill", &smoke_cancel)] {
        let indexed = replay(&mut indexed_cluster(256), stream);
        let scan = replay(&mut scan_cluster(256), stream);
        assert_eq!(
            indexed, scan,
            "indexed scheduler diverged from the scan oracle on the {name} smoke stream"
        );
    }
    let mut g = c.benchmark_group("cluster_sched");
    g.bench_function("replay_256n_2k_indexed", |b| {
        b.iter(|| black_box(replay(&mut indexed_cluster(256), &smoke)));
    });
    g.bench_function("replay_256n_2k_scan", |b| {
        b.iter(|| black_box(replay(&mut scan_cluster(256), &smoke)));
    });
    g.bench_function("replay_256n_2k_cancel_backfill_indexed", |b| {
        b.iter(|| black_box(replay(&mut indexed_cluster(256), &smoke_cancel)));
    });
    g.finish();

    if std::env::args().any(|a| a == "--test") {
        return;
    }

    // Measured pass: 100k-job streams on 1k and 8k nodes, plus the
    // cancel/backfill-heavy stream. The headline pair (indexed vs scan on
    // the 8k stream) is median-of-3 on both sides; the 1k and cancel
    // streams verify decision-identity against a single scan replay (the
    // scan side of those streams is a correctness witness, not a committed
    // metric, and a full scan replay costs tens of seconds).
    let jobs = 100_000u64;
    let stream_1k = workload(1_000, jobs as usize, 17, false);
    let stream_8k = workload(8_000, jobs as usize, 19, false);
    let stream_8k_cancel = workload(8_000, jobs as usize, 23, true);

    let (h_idx_1k, idx_1k) = timed_replays(3, || indexed_cluster(1_000), &stream_1k, "1k idx");
    let (h_scan_1k, _) = timed_replays(1, || scan_cluster(1_000), &stream_1k, "1k scan");
    assert_eq!(h_idx_1k, h_scan_1k, "divergence on the 1k stream");

    let (h_idx_8k, idx_8k) = timed_replays(3, || indexed_cluster(8_000), &stream_8k, "8k idx");
    let (h_scan_8k, scan_8k) = timed_replays(3, || scan_cluster(8_000), &stream_8k, "8k scan");
    assert_eq!(h_idx_8k, h_scan_8k, "divergence on the 8k stream");

    let (h_idx_8kc, idx_8k_cancel) = timed_replays(
        3,
        || indexed_cluster(8_000),
        &stream_8k_cancel,
        "8k cancel idx",
    );
    let (h_scan_8kc, _) = timed_replays(
        1,
        || scan_cluster(8_000),
        &stream_8k_cancel,
        "8k cancel scan",
    );
    assert_eq!(h_idx_8kc, h_scan_8kc, "divergence on the 8k cancel stream");

    let speedup = idx_8k / scan_8k;
    println!("cluster_sched/1k_100k:        {idx_1k:.0} jobs/s (indexed, median of 3)");
    println!("cluster_sched/8k_100k:        {idx_8k:.0} jobs/s (indexed, median of 3)");
    println!("cluster_sched/8k_cancel:      {idx_8k_cancel:.0} jobs/s (indexed, median of 3)");
    println!("cluster_sched/8k_100k_scan:   {scan_8k:.0} jobs/s (scan oracle)");
    println!("cluster_sched/speedup_8k:     {speedup:.1}x");

    let json = format!(
        "{{\n  \"sched_1k_100k_jobs_per_sec\": {idx_1k:.0},\n  \
         \"sched_8k_100k_jobs_per_sec\": {idx_8k:.0},\n  \
         \"sched_8k_cancel_backfill_jobs_per_sec\": {idx_8k_cancel:.0},\n  \
         \"sched_8k_100k_scan_jobs_per_sec\": {scan_8k:.0},\n  \
         \"sched_8k_speedup_vs_scan\": {speedup:.2}\n}}\n"
    );
    let path = std::env::var("BENCH_CLUSTER_SCHED_JSON").unwrap_or_else(|_| {
        format!(
            "{}/../../target/figures/BENCH_cluster_sched.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("[json] {path}"),
        Err(e) => eprintln!("[json] failed to write {path}: {e}"),
    }
}

criterion_group!(benches, bench_cluster_sched);
criterion_main!(benches);
