//! FCFS + conservative EASY-backfill scheduler over a set of nodes.
//!
//! Mirrors the SLURM behaviour the paper relies on: exclusive jobs take whole
//! nodes; jobs submitted with the shared flag (or to the sharing partition)
//! can be co-located with other shared work on the same node; GPU nodes are
//! tracked through GRES-style counts. Walltime estimates drive backfill
//! reservations; actual runtimes come from the trace and are typically
//! shorter.

use crate::job::{Job, JobId, JobSpec, JobState};
use crate::node::{Node, NodeResources};
use des::SimTime;
use fabric::NodeId;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Errors from scheduler operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerError {
    UnknownJob,
    NotRunning,
    ImpossibleRequest,
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::UnknownJob => write!(f, "unknown job id"),
            SchedulerError::NotRunning => write!(f, "job is not running"),
            SchedulerError::ImpossibleRequest => {
                write!(f, "request can never be satisfied by this cluster")
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

/// The cluster state machine. Drive it with `submit` / `try_schedule` /
/// `finish`; query idle capacity for the serverless resource manager.
pub struct Cluster {
    nodes: Vec<Node>,
    jobs: HashMap<JobId, Job>,
    pending: VecDeque<JobId>,
    next_id: u64,
    /// Completed-job history kept for statistics.
    completed: Vec<JobId>,
}

impl Cluster {
    pub fn new(nodes: Vec<Node>) -> Self {
        Cluster {
            nodes,
            jobs: HashMap::new(),
            pending: VecDeque::new(),
            next_id: 0,
            completed: Vec::new(),
        }
    }

    /// A homogeneous cluster of `n` nodes.
    pub fn homogeneous(n: usize, capacity: NodeResources) -> Self {
        Cluster::new(
            (0..n)
                .map(|i| Node::new(NodeId(i as u32), capacity))
                .collect(),
        )
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0 as usize)
    }

    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.nodes.get_mut(id.0 as usize)
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    pub fn running_jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values().filter(|j| j.state == JobState::Running)
    }

    pub fn running_count(&self) -> usize {
        self.running_jobs().count()
    }

    pub fn completed_jobs(&self) -> impl Iterator<Item = &Job> {
        self.completed.iter().filter_map(|id| self.jobs.get(id))
    }

    pub fn idle_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_idle())
    }

    pub fn idle_node_count(&self) -> usize {
        self.idle_nodes().count()
    }

    /// Submit a job; returns its id. `actual_runtime` is the runtime the
    /// trace decided (unknown to the scheduler, which only sees `walltime`).
    pub fn submit(&mut self, spec: JobSpec, actual_runtime: SimTime, now: SimTime) -> JobId {
        self.next_id += 1;
        let id = JobId(self.next_id);
        let runtime = actual_runtime.min(spec.walltime);
        self.jobs.insert(id, Job::new(id, spec, now, runtime));
        self.pending.push_back(id);
        id
    }

    /// Whether `spec` could ever be satisfied by an empty cluster.
    pub fn is_feasible(&self, spec: &JobSpec) -> bool {
        let fitting = self
            .nodes
            .iter()
            .filter(|n| n.capacity.fits(&spec.per_node))
            .count();
        fitting >= spec.nodes as usize
    }

    /// Find nodes that can host `spec` right now. Placement prefers the
    /// most-recently-freed nodes (cache- and image-locality heuristics in
    /// real schedulers have the same effect): freshly released nodes turn
    /// around quickly, producing the short-idle-period-heavy distribution of
    /// Fig. 1c, while a minority of nodes accumulates the long tail. Shared
    /// jobs pack onto already-allocated nodes first.
    fn find_nodes(&self, spec: &JobSpec) -> Option<Vec<NodeId>> {
        let key = |n: &&Node| {
            (
                std::cmp::Reverse(n.idle_since().unwrap_or(SimTime::MAX)),
                n.id,
            )
        };
        let mut candidates: Vec<&Node> = self
            .nodes
            .iter()
            .filter(|n| n.can_host(&spec.per_node, spec.shared))
            .collect();
        let k = spec.nodes as usize;
        if candidates.len() < k {
            return None;
        }
        if k == 0 {
            return Some(Vec::new());
        }
        // Keys are unique (node ids break ties), so selecting the k smallest
        // and sorting just those is identical to a full sort's prefix — and
        // this runs on every scheduling attempt over all ~nodes candidates,
        // usually for single-node jobs (k = 1).
        if candidates.len() > k {
            candidates.select_nth_unstable_by_key(k - 1, key);
            candidates.truncate(k);
        }
        candidates.sort_unstable_by_key(key);
        Some(candidates.iter().map(|n| n.id).collect())
    }

    fn start_job(&mut self, id: JobId, nodes: Vec<NodeId>, now: SimTime) -> Vec<SimTime> {
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Running;
        job.started_at = Some(now);
        job.assigned = nodes.clone();
        let per_node = job.spec.per_node;
        let exclusive = !job.spec.shared;
        let mut ended_idle_periods = Vec::new();
        for nid in nodes {
            let node = self.nodes.get_mut(nid.0 as usize).expect("node exists");
            if let Some(p) = node.allocate(id, per_node, exclusive, now) {
                ended_idle_periods.push(p);
            }
        }
        ended_idle_periods
    }

    /// Earliest time at which the head-of-queue job could start, assuming
    /// running jobs end at their walltime limit and whole nodes free up.
    fn shadow_time(&self, head: &JobSpec, now: SimTime) -> SimTime {
        // Free time of each node = max expected end over its jobs.
        let mut node_free_at: Vec<(SimTime, &Node)> = self
            .nodes
            .iter()
            .filter(|n| n.capacity.fits(&head.per_node))
            .map(|n| {
                let free_at = n
                    .jobs()
                    .filter_map(|jid| self.jobs.get(&jid))
                    .filter_map(|j| j.started_at.map(|s| s + j.spec.walltime))
                    .max()
                    .unwrap_or(now);
                (free_at.max(now), n)
            })
            .collect();
        node_free_at.sort_by_key(|(t, n)| (*t, n.id));
        if node_free_at.len() < head.nodes as usize {
            return SimTime::MAX;
        }
        node_free_at[head.nodes as usize - 1].0
    }

    /// Run the scheduling pass: start the queue head while possible, then
    /// conservatively backfill jobs that finish before the head's shadow
    /// time. Returns `(started job ids, idle periods that just ended)`.
    pub fn try_schedule(&mut self, now: SimTime) -> (Vec<JobId>, Vec<SimTime>) {
        let mut started = Vec::new();
        let mut idle_periods = Vec::new();

        // FCFS phase. Specs are borrowed, not cloned — this runs once per
        // arrival and once per completion, and a `JobSpec` owns a `String`.
        while let Some(&head) = self.pending.front() {
            if !self.is_feasible(&self.jobs[&head].spec) {
                // Drop impossible jobs so they don't wedge the queue.
                self.pending.pop_front();
                if let Some(j) = self.jobs.get_mut(&head) {
                    j.state = JobState::Cancelled;
                    j.finished_at = Some(now);
                }
                continue;
            }
            match self.find_nodes(&self.jobs[&head].spec) {
                Some(nodes) => {
                    self.pending.pop_front();
                    idle_periods.extend(self.start_job(head, nodes, now));
                    started.push(head);
                }
                None => break,
            }
        }

        // Backfill phase (conservative EASY): jobs behind the head may start
        // only if their walltime fits before the head's reservation.
        if let Some(&head) = self.pending.front() {
            let shadow = self.shadow_time(&self.jobs[&head].spec, now);
            let mut i = 1;
            while i < self.pending.len() {
                let jid = self.pending[i];
                let fits_before_shadow = now + self.jobs[&jid].spec.walltime <= shadow;
                if fits_before_shadow {
                    if let Some(nodes) = self.find_nodes(&self.jobs[&jid].spec) {
                        self.pending.remove(i);
                        idle_periods.extend(self.start_job(jid, nodes, now));
                        started.push(jid);
                        continue; // do not advance i; element shifted in
                    }
                }
                i += 1;
            }
        }

        (started, idle_periods)
    }

    /// Complete a running job, releasing its nodes.
    pub fn finish(&mut self, id: JobId, now: SimTime) -> Result<(), SchedulerError> {
        let job = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob)?;
        if job.state != JobState::Running {
            return Err(SchedulerError::NotRunning);
        }
        job.state = JobState::Completed;
        job.finished_at = Some(now);
        let assigned = std::mem::take(&mut job.assigned);
        for nid in &assigned {
            if let Some(node) = self.nodes.get_mut(nid.0 as usize) {
                node.release(id, now);
            }
        }
        // Keep assignment for statistics.
        self.jobs.get_mut(&id).expect("exists").assigned = assigned;
        self.completed.push(id);
        Ok(())
    }

    /// Cancel a pending or running job.
    pub fn cancel(&mut self, id: JobId, now: SimTime) -> Result<(), SchedulerError> {
        let job = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob)?;
        match job.state {
            JobState::Pending => {
                job.state = JobState::Cancelled;
                job.finished_at = Some(now);
                self.pending.retain(|&j| j != id);
                Ok(())
            }
            JobState::Running => {
                self.finish(id, now)?;
                self.jobs.get_mut(&id).expect("exists").state = JobState::Cancelled;
                Ok(())
            }
            _ => Err(SchedulerError::NotRunning),
        }
    }

    /// Next expected completion among running jobs: `(when, job)`.
    /// The simulation driver uses this to schedule completion events.
    pub fn next_completion(&self) -> Option<(SimTime, JobId)> {
        self.running_jobs()
            .filter_map(|j| j.started_at.map(|s| (s + j.actual_runtime, j.id)))
            .min()
    }

    /// Aggregate used/total core counts (for utilization sampling).
    pub fn core_usage(&self) -> (u64, u64) {
        let mut used = 0;
        let mut total = 0;
        for n in &self.nodes {
            used += u64::from(n.used().cores);
            total += u64::from(n.capacity.cores);
        }
        (used, total)
    }

    /// Memory accounting split the way Fig. 1b reports it:
    /// `(used, free_on_allocated, free_on_idle)` in MB.
    pub fn memory_usage(&self) -> (u64, u64, u64) {
        let mut used = 0;
        let mut free_alloc = 0;
        let mut free_idle = 0;
        for n in &self.nodes {
            let u = n.used().memory_mb;
            used += u;
            if n.is_idle() {
                free_idle += n.capacity.memory_mb;
            } else {
                free_alloc += n.capacity.memory_mb - u;
            }
        }
        (used, free_alloc, free_idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(n: usize) -> Cluster {
        Cluster::homogeneous(n, NodeResources::daint_mc())
    }

    fn excl(nodes: u32, mins: u64, tag: &str) -> JobSpec {
        JobSpec::exclusive(
            nodes,
            NodeResources::daint_mc(),
            SimTime::from_mins(mins),
            tag,
        )
    }

    #[test]
    fn fcfs_starts_in_order() {
        let mut c = small_cluster(4);
        let a = c.submit(excl(2, 60, "a"), SimTime::from_mins(30), SimTime::ZERO);
        let b = c.submit(excl(2, 60, "b"), SimTime::from_mins(30), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(started, vec![a, b]);
        assert_eq!(c.idle_node_count(), 0);
    }

    #[test]
    fn head_blocks_until_space() {
        let mut c = small_cluster(4);
        let a = c.submit(excl(3, 60, "a"), SimTime::from_mins(60), SimTime::ZERO);
        let b = c.submit(excl(2, 60, "b"), SimTime::from_mins(60), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(started, vec![a]);
        assert_eq!(c.pending_count(), 1);
        c.finish(a, SimTime::from_mins(60)).unwrap();
        let (started, _) = c.try_schedule(SimTime::from_mins(60));
        assert_eq!(started, vec![b]);
    }

    #[test]
    fn backfill_short_job_jumps_queue() {
        let mut c = small_cluster(4);
        let a = c.submit(excl(3, 100, "a"), SimTime::from_mins(100), SimTime::ZERO);
        // Head needs 4 nodes -> waits until `a` ends at t=100min.
        let head = c.submit(excl(4, 100, "head"), SimTime::from_mins(100), SimTime::ZERO);
        // Short 1-node job fits in the hole before the shadow time.
        let short = c.submit(excl(1, 50, "short"), SimTime::from_mins(50), SimTime::ZERO);
        // Long 1-node job would delay the reservation: no backfill.
        let long = c.submit(excl(1, 500, "long"), SimTime::from_mins(500), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert!(started.contains(&a));
        assert!(started.contains(&short), "short job backfilled");
        assert!(!started.contains(&head));
        assert!(!started.contains(&long), "long job must not delay head");
    }

    #[test]
    fn shared_jobs_colocate_on_one_node() {
        let mut c = small_cluster(1);
        let half = NodeResources {
            cores: 18,
            memory_mb: 32 * 1024,
            gpus: 0,
        };
        let a = c.submit(
            JobSpec::shared(1, half, SimTime::from_mins(60), "a"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        let b = c.submit(
            JobSpec::shared(1, half, SimTime::from_mins(60), "b"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(started, vec![a, b]);
        let node = c.node(NodeId(0)).unwrap();
        assert_eq!(node.job_count(), 2);
        assert_eq!(node.free().cores, 0);
    }

    #[test]
    fn exclusive_jobs_never_share() {
        let mut c = small_cluster(1);
        let half = NodeResources {
            cores: 18,
            memory_mb: 32 * 1024,
            gpus: 0,
        };
        c.submit(
            JobSpec::exclusive(1, half, SimTime::from_mins(60), "a"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        c.submit(
            JobSpec::shared(1, half, SimTime::from_mins(60), "b"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(started.len(), 1, "second job cannot join exclusive node");
    }

    #[test]
    fn impossible_jobs_are_cancelled_not_wedged() {
        let mut c = small_cluster(2);
        let imp = c.submit(excl(5, 60, "too-big"), SimTime::from_mins(1), SimTime::ZERO);
        let ok = c.submit(excl(1, 60, "fine"), SimTime::from_mins(1), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(c.job(imp).unwrap().state, JobState::Cancelled);
        assert_eq!(started, vec![ok]);
    }

    #[test]
    fn finish_errors() {
        let mut c = small_cluster(1);
        assert_eq!(
            c.finish(JobId(99), SimTime::ZERO).unwrap_err(),
            SchedulerError::UnknownJob
        );
        let a = c.submit(excl(1, 5, "a"), SimTime::from_mins(5), SimTime::ZERO);
        assert_eq!(
            c.finish(a, SimTime::ZERO).unwrap_err(),
            SchedulerError::NotRunning
        );
    }

    #[test]
    fn next_completion_uses_actual_runtime() {
        let mut c = small_cluster(2);
        let a = c.submit(excl(1, 100, "a"), SimTime::from_mins(30), SimTime::ZERO);
        let _b = c.submit(excl(1, 100, "b"), SimTime::from_mins(70), SimTime::ZERO);
        c.try_schedule(SimTime::ZERO);
        let (when, who) = c.next_completion().unwrap();
        assert_eq!(who, a);
        assert_eq!(when, SimTime::from_mins(30));
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut c = small_cluster(1);
        let a = c.submit(excl(1, 60, "a"), SimTime::from_mins(60), SimTime::ZERO);
        let b = c.submit(excl(1, 60, "b"), SimTime::from_mins(60), SimTime::ZERO);
        c.try_schedule(SimTime::ZERO);
        c.cancel(b, SimTime::from_secs(1)).unwrap();
        assert_eq!(c.job(b).unwrap().state, JobState::Cancelled);
        c.cancel(a, SimTime::from_secs(2)).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Cancelled);
        assert_eq!(c.idle_node_count(), 1);
    }

    #[test]
    fn usage_accounting() {
        let mut c = small_cluster(2);
        let half = NodeResources {
            cores: 18,
            memory_mb: 32 * 1024,
            gpus: 0,
        };
        c.submit(
            JobSpec::shared(1, half, SimTime::from_mins(60), "a"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        c.try_schedule(SimTime::ZERO);
        let (used, total) = c.core_usage();
        assert_eq!((used, total), (18, 72));
        let (mem_used, free_alloc, free_idle) = c.memory_usage();
        assert_eq!(mem_used, 32 * 1024);
        assert_eq!(free_alloc, 96 * 1024);
        assert_eq!(free_idle, 128 * 1024);
    }

    #[test]
    fn idle_periods_reported_at_start() {
        let mut c = small_cluster(1);
        let a = c.submit(
            excl(1, 10, "a"),
            SimTime::from_mins(10),
            SimTime::from_mins(5),
        );
        let (_, periods) = c.try_schedule(SimTime::from_mins(5));
        assert_eq!(periods, vec![SimTime::from_mins(5)]);
        c.finish(a, SimTime::from_mins(15)).unwrap();
        c.submit(
            excl(1, 10, "b"),
            SimTime::from_mins(10),
            SimTime::from_mins(18),
        );
        let (_, periods) = c.try_schedule(SimTime::from_mins(18));
        assert_eq!(periods, vec![SimTime::from_mins(3)]);
    }
}
