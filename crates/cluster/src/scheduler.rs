//! FCFS + conservative EASY-backfill scheduler over a set of nodes.
//!
//! Mirrors the SLURM behaviour the paper relies on: exclusive jobs take whole
//! nodes; jobs submitted with the shared flag (or to the sharing partition)
//! can be co-located with other shared work on the same node; GPU nodes are
//! tracked through GRES-style counts. Walltime estimates drive backfill
//! reservations; actual runtimes come from the trace and are typically
//! shorter.
//!
//! The hot paths run on incrementally-maintained indexes (see
//! [`crate::index`]): placement pulls the first `k` nodes from an ordered
//! free-node index instead of filtering and sorting all nodes, the backfill
//! shadow time is a k-th order statistic over an incrementally-updated
//! per-node walltime horizon, feasibility is a per-capacity-class member
//! count, and backfill extraction tombstones its queue entry instead of
//! shifting the `VecDeque`. Scheduling decisions are bit-identical to the
//! original scan implementation, which is kept verbatim in
//! [`crate::reference`] and enforced as an oracle by property tests and by
//! the committed `ci/trace_reference.json` replay artifact.

use crate::index::SchedIndex;
use crate::job::{Job, JobId, JobSpec, JobState};
use crate::node::{Node, NodeResources};
use des::SimTime;
use fabric::NodeId;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Errors from scheduler operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerError {
    UnknownJob,
    NotRunning,
    ImpossibleRequest,
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::UnknownJob => write!(f, "unknown job id"),
            SchedulerError::NotRunning => write!(f, "job is not running"),
            SchedulerError::ImpossibleRequest => {
                write!(f, "request can never be satisfied by this cluster")
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

/// How many stale (tombstoned) entries the pending queue tolerates before a
/// compaction pass. Backfill starts and cancellations mark entries stale in
/// O(1) instead of shifting the deque; compaction keeps iteration over the
/// queue amortized O(live).
const PENDING_COMPACT_MIN: usize = 64;

/// The cluster state machine. Drive it with `submit` / `try_schedule` /
/// `finish`; query idle capacity for the serverless resource manager.
pub struct Cluster {
    nodes: Vec<Node>,
    jobs: HashMap<JobId, Job>,
    /// Arrival-ordered queue. Entries whose job is no longer `Pending` are
    /// tombstones: backfill extraction and cancellation mark the job's state
    /// and leave the entry in place (O(1) amortized instead of a O(n)
    /// `remove`/`retain`); scheduling passes skip them and
    /// [`Cluster::maybe_compact_pending`] sweeps them out.
    pending: VecDeque<JobId>,
    /// Number of non-tombstone entries in `pending`.
    pending_live: usize,
    next_id: u64,
    /// Completed-job history kept for statistics (state `Completed` only;
    /// see `cancelled` for the other terminal outcome).
    completed: Vec<JobId>,
    /// Cancelled-job history: jobs dropped as infeasible and jobs cancelled
    /// while pending or running. Kept so outcome accounting (job counts,
    /// wait-time statistics) can audit every submitted job instead of
    /// silently losing the ones that never completed.
    cancelled: Vec<JobId>,
    /// Incremental placement/backfill/feasibility indexes.
    index: SchedIndex,
}

impl Cluster {
    pub fn new(nodes: Vec<Node>) -> Self {
        let index = SchedIndex::new(&nodes);
        Cluster {
            nodes,
            jobs: HashMap::new(),
            pending: VecDeque::new(),
            pending_live: 0,
            next_id: 0,
            completed: Vec::new(),
            cancelled: Vec::new(),
            index,
        }
    }

    /// A homogeneous cluster of `n` nodes.
    pub fn homogeneous(n: usize, capacity: NodeResources) -> Self {
        Cluster::new(
            (0..n)
                .map(|i| Node::new(NodeId(i as u32), capacity))
                .collect(),
        )
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0 as usize)
    }

    /// Mutable node access for external state changes (draining a node,
    /// marking it down, …). The scheduler cannot see what the caller
    /// mutates, so this conservatively invalidates the incremental indexes;
    /// the next scheduling pass rebuilds them in one O(n log n) sweep.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Node> {
        self.index.mark_dirty();
        self.nodes.get_mut(id.0 as usize)
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    pub fn pending_count(&self) -> usize {
        self.pending_live
    }

    pub fn running_jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values().filter(|j| j.state == JobState::Running)
    }

    pub fn running_count(&self) -> usize {
        self.running_jobs().count()
    }

    /// Jobs that ran to completion, in completion order.
    pub fn completed_jobs(&self) -> impl Iterator<Item = &Job> {
        self.completed.iter().filter_map(|id| self.jobs.get(id))
    }

    /// Jobs that terminated without completing — dropped as infeasible, or
    /// cancelled while pending or running — in cancellation order. Every
    /// submitted job ends up reachable through exactly one of
    /// [`Cluster::completed_jobs`], [`Cluster::cancelled_jobs`], the pending
    /// queue, or the running set.
    pub fn cancelled_jobs(&self) -> impl Iterator<Item = &Job> {
        self.cancelled.iter().filter_map(|id| self.jobs.get(id))
    }

    pub fn cancelled_count(&self) -> usize {
        self.cancelled.len()
    }

    pub fn idle_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_idle())
    }

    pub fn idle_node_count(&self) -> usize {
        self.idle_nodes().count()
    }

    /// Submit a job; returns its id. `actual_runtime` is the runtime the
    /// trace decided (unknown to the scheduler, which only sees `walltime`).
    pub fn submit(&mut self, spec: JobSpec, actual_runtime: SimTime, now: SimTime) -> JobId {
        self.next_id += 1;
        let id = JobId(self.next_id);
        let runtime = actual_runtime.min(spec.walltime);
        self.jobs.insert(id, Job::new(id, spec, now, runtime));
        self.pending.push_back(id);
        self.pending_live += 1;
        id
    }

    /// Whether `spec` could ever be satisfied by an empty cluster. Node
    /// capacities are static, so this is a per-capacity-class member-count
    /// sum — O(#classes) — unless external node mutation dirtied the index,
    /// in which case it falls back to the direct scan (same result).
    pub fn is_feasible(&self, spec: &JobSpec) -> bool {
        let fitting = if self.index.is_dirty() {
            self.nodes
                .iter()
                .filter(|n| n.capacity.fits(&spec.per_node))
                .count()
        } else {
            self.index.fitting_count(&spec.per_node)
        };
        fitting >= spec.nodes as usize
    }

    /// Rebuild the indexes if external node mutation invalidated them.
    fn ensure_index(&mut self) {
        if self.index.is_dirty() {
            self.index.rebuild(&self.nodes, &self.jobs);
        }
    }

    fn start_job(&mut self, id: JobId, nodes: Vec<NodeId>, now: SimTime) -> Vec<SimTime> {
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Running;
        job.started_at = Some(now);
        let per_node = job.spec.per_node;
        let exclusive = !job.spec.shared;
        let walltime_end = now + job.spec.walltime;
        let mut ended_idle_periods = Vec::new();
        for &nid in &nodes {
            let i = nid.0 as usize;
            if let Some(p) = self.nodes[i].allocate(id, per_node, exclusive, now) {
                ended_idle_periods.push(p);
            }
            self.index.note_allocated(&self.nodes[i], walltime_end);
        }
        // Assign by moving the vector — the allocation loop above borrowed
        // it, so one extra map lookup replaces a whole-Vec clone.
        self.jobs.get_mut(&id).expect("exists").assigned = nodes;
        ended_idle_periods
    }

    /// Recompute a node's raw backfill horizon after a release: the max
    /// walltime end over the jobs still allocated on it.
    fn node_free_at(&self, node: &Node) -> SimTime {
        node.jobs()
            .filter_map(|jid| self.jobs.get(&jid))
            .filter_map(|j| j.started_at.map(|s| s + j.spec.walltime))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Drop tombstoned entries off the queue front and return the live head.
    fn live_head(&mut self) -> Option<JobId> {
        while let Some(&id) = self.pending.front() {
            if self.jobs[&id].state == JobState::Pending {
                return Some(id);
            }
            self.pending.pop_front();
        }
        None
    }

    /// Sweep out tombstones once they dominate the queue; amortized O(1)
    /// per extraction.
    fn maybe_compact_pending(&mut self) {
        if self.pending.len() > PENDING_COMPACT_MIN && self.pending_live * 2 < self.pending.len() {
            let jobs = &self.jobs;
            self.pending
                .retain(|id| jobs[id].state == JobState::Pending);
            debug_assert_eq!(self.pending.len(), self.pending_live);
        }
    }

    /// Run the scheduling pass: start the queue head while possible, then
    /// conservatively backfill jobs that finish before the head's shadow
    /// time. Returns `(started job ids, idle periods that just ended)`.
    pub fn try_schedule(&mut self, now: SimTime) -> (Vec<JobId>, Vec<SimTime>) {
        self.ensure_index();
        let mut started = Vec::new();
        let mut idle_periods = Vec::new();

        // FCFS phase. Specs are borrowed, not cloned — this runs once per
        // arrival and once per completion, and a `JobSpec` owns a `String`.
        while let Some(head) = self.live_head() {
            if !self.is_feasible(&self.jobs[&head].spec) {
                // Drop impossible jobs so they don't wedge the queue.
                self.pending.pop_front();
                self.pending_live -= 1;
                let j = self.jobs.get_mut(&head).expect("exists");
                j.state = JobState::Cancelled;
                j.finished_at = Some(now);
                self.cancelled.push(head);
                continue;
            }
            match self.index.select(&self.nodes, &self.jobs[&head].spec) {
                Some(nodes) => {
                    self.pending.pop_front();
                    self.pending_live -= 1;
                    idle_periods.extend(self.start_job(head, nodes, now));
                    started.push(head);
                }
                None => break,
            }
        }

        // Backfill phase (conservative EASY): jobs behind the head may start
        // only if their walltime fits before the head's reservation. A
        // backfilled job's queue entry becomes a tombstone (its state is no
        // longer `Pending`), so extraction never shifts the deque.
        if let Some(&head) = self.pending.front() {
            let shadow = self.index.shadow_time(&self.jobs[&head].spec, now);
            for i in 1..self.pending.len() {
                let jid = self.pending[i];
                if self.jobs[&jid].state != JobState::Pending {
                    continue; // tombstone
                }
                let fits_before_shadow = now + self.jobs[&jid].spec.walltime <= shadow;
                if fits_before_shadow {
                    if let Some(nodes) = self.index.select(&self.nodes, &self.jobs[&jid].spec) {
                        self.pending_live -= 1;
                        idle_periods.extend(self.start_job(jid, nodes, now));
                        started.push(jid);
                    }
                }
            }
        }
        self.maybe_compact_pending();

        (started, idle_periods)
    }

    /// Complete a running job, releasing its nodes.
    pub fn finish(&mut self, id: JobId, now: SimTime) -> Result<(), SchedulerError> {
        self.ensure_index();
        let job = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob)?;
        if job.state != JobState::Running {
            return Err(SchedulerError::NotRunning);
        }
        job.state = JobState::Completed;
        job.finished_at = Some(now);
        let assigned = std::mem::take(&mut job.assigned);
        for nid in &assigned {
            let i = nid.0 as usize;
            if i >= self.nodes.len() {
                continue;
            }
            self.nodes[i].release(id, now);
            let free_at = self.node_free_at(&self.nodes[i]);
            self.index.note_released(&self.nodes[i], free_at);
        }
        // Keep assignment for statistics.
        self.jobs.get_mut(&id).expect("exists").assigned = assigned;
        self.completed.push(id);
        Ok(())
    }

    /// Cancel a pending or running job. The job lands in the cancelled
    /// history either way (a running job's nodes are released first).
    pub fn cancel(&mut self, id: JobId, now: SimTime) -> Result<(), SchedulerError> {
        let job = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob)?;
        match job.state {
            JobState::Pending => {
                job.state = JobState::Cancelled;
                job.finished_at = Some(now);
                // The queue entry stays behind as a tombstone.
                self.pending_live -= 1;
                self.cancelled.push(id);
                self.maybe_compact_pending();
                Ok(())
            }
            JobState::Running => {
                self.finish(id, now)?;
                // `finish` filed it under completed; move it to the
                // cancelled history so each terminal state has exactly one
                // ledger.
                debug_assert_eq!(self.completed.last(), Some(&id));
                self.completed.pop();
                self.jobs.get_mut(&id).expect("exists").state = JobState::Cancelled;
                self.cancelled.push(id);
                Ok(())
            }
            _ => Err(SchedulerError::NotRunning),
        }
    }

    /// Next expected completion among running jobs: `(when, job)`.
    /// The simulation driver uses this to schedule completion events.
    pub fn next_completion(&self) -> Option<(SimTime, JobId)> {
        self.running_jobs()
            .filter_map(|j| j.started_at.map(|s| (s + j.actual_runtime, j.id)))
            .min()
    }

    /// Aggregate used/total core counts (for utilization sampling).
    pub fn core_usage(&self) -> (u64, u64) {
        let mut used = 0;
        let mut total = 0;
        for n in &self.nodes {
            used += u64::from(n.used().cores);
            total += u64::from(n.capacity.cores);
        }
        (used, total)
    }

    /// Memory accounting split the way Fig. 1b reports it:
    /// `(used, free_on_allocated, free_on_idle)` in MB.
    pub fn memory_usage(&self) -> (u64, u64, u64) {
        let mut used = 0;
        let mut free_alloc = 0;
        let mut free_idle = 0;
        for n in &self.nodes {
            let u = n.used().memory_mb;
            used += u;
            if n.is_idle() {
                free_idle += n.capacity.memory_mb;
            } else {
                free_alloc += n.capacity.memory_mb - u;
            }
        }
        (used, free_alloc, free_idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(n: usize) -> Cluster {
        Cluster::homogeneous(n, NodeResources::daint_mc())
    }

    fn excl(nodes: u32, mins: u64, tag: &str) -> JobSpec {
        JobSpec::exclusive(
            nodes,
            NodeResources::daint_mc(),
            SimTime::from_mins(mins),
            tag,
        )
    }

    #[test]
    fn fcfs_starts_in_order() {
        let mut c = small_cluster(4);
        let a = c.submit(excl(2, 60, "a"), SimTime::from_mins(30), SimTime::ZERO);
        let b = c.submit(excl(2, 60, "b"), SimTime::from_mins(30), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(started, vec![a, b]);
        assert_eq!(c.idle_node_count(), 0);
    }

    #[test]
    fn head_blocks_until_space() {
        let mut c = small_cluster(4);
        let a = c.submit(excl(3, 60, "a"), SimTime::from_mins(60), SimTime::ZERO);
        let b = c.submit(excl(2, 60, "b"), SimTime::from_mins(60), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(started, vec![a]);
        assert_eq!(c.pending_count(), 1);
        c.finish(a, SimTime::from_mins(60)).unwrap();
        let (started, _) = c.try_schedule(SimTime::from_mins(60));
        assert_eq!(started, vec![b]);
    }

    #[test]
    fn backfill_short_job_jumps_queue() {
        let mut c = small_cluster(4);
        let a = c.submit(excl(3, 100, "a"), SimTime::from_mins(100), SimTime::ZERO);
        // Head needs 4 nodes -> waits until `a` ends at t=100min.
        let head = c.submit(excl(4, 100, "head"), SimTime::from_mins(100), SimTime::ZERO);
        // Short 1-node job fits in the hole before the shadow time.
        let short = c.submit(excl(1, 50, "short"), SimTime::from_mins(50), SimTime::ZERO);
        // Long 1-node job would delay the reservation: no backfill.
        let long = c.submit(excl(1, 500, "long"), SimTime::from_mins(500), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert!(started.contains(&a));
        assert!(started.contains(&short), "short job backfilled");
        assert!(!started.contains(&head));
        assert!(!started.contains(&long), "long job must not delay head");
    }

    #[test]
    fn shared_jobs_colocate_on_one_node() {
        let mut c = small_cluster(1);
        let half = NodeResources {
            cores: 18,
            memory_mb: 32 * 1024,
            gpus: 0,
        };
        let a = c.submit(
            JobSpec::shared(1, half, SimTime::from_mins(60), "a"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        let b = c.submit(
            JobSpec::shared(1, half, SimTime::from_mins(60), "b"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(started, vec![a, b]);
        let node = c.node(NodeId(0)).unwrap();
        assert_eq!(node.job_count(), 2);
        assert_eq!(node.free().cores, 0);
    }

    #[test]
    fn exclusive_jobs_never_share() {
        let mut c = small_cluster(1);
        let half = NodeResources {
            cores: 18,
            memory_mb: 32 * 1024,
            gpus: 0,
        };
        c.submit(
            JobSpec::exclusive(1, half, SimTime::from_mins(60), "a"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        c.submit(
            JobSpec::shared(1, half, SimTime::from_mins(60), "b"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(started.len(), 1, "second job cannot join exclusive node");
    }

    #[test]
    fn impossible_jobs_are_cancelled_not_wedged() {
        let mut c = small_cluster(2);
        let imp = c.submit(excl(5, 60, "too-big"), SimTime::from_mins(1), SimTime::ZERO);
        let ok = c.submit(excl(1, 60, "fine"), SimTime::from_mins(1), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        assert_eq!(c.job(imp).unwrap().state, JobState::Cancelled);
        assert_eq!(started, vec![ok]);
    }

    #[test]
    fn infeasible_jobs_land_in_cancelled_history() {
        // Regression: cancelled-as-infeasible jobs used to get `finished_at`
        // but were reachable through no history — outcome accounting
        // silently dropped them.
        let mut c = small_cluster(2);
        let imp = c.submit(excl(5, 60, "too-big"), SimTime::from_mins(1), SimTime::ZERO);
        let ok = c.submit(excl(1, 60, "fine"), SimTime::from_mins(1), SimTime::ZERO);
        c.try_schedule(SimTime::from_secs(30));
        assert_eq!(c.cancelled_count(), 1);
        let dropped = c.cancelled_jobs().next().unwrap();
        assert_eq!(dropped.id, imp);
        assert_eq!(dropped.state, JobState::Cancelled);
        assert_eq!(dropped.finished_at, Some(SimTime::from_secs(30)));
        assert_eq!(dropped.started_at, None, "never ran");
        // The completed ledger must not contain it.
        c.finish(ok, SimTime::from_mins(60)).unwrap();
        assert!(c.completed_jobs().all(|j| j.id != imp));
        assert_eq!(c.completed_jobs().count(), 1);
    }

    #[test]
    fn every_submitted_job_is_accounted_for() {
        // jobs = completed + cancelled + running + pending, with no overlap,
        // across all three cancellation paths (infeasible drop, pending
        // cancel, running cancel).
        let mut c = small_cluster(2);
        let infeasible = c.submit(excl(9, 60, "big"), SimTime::from_mins(1), SimTime::ZERO);
        let run_cancel = c.submit(excl(2, 60, "rc"), SimTime::from_mins(60), SimTime::ZERO);
        let pend_cancel = c.submit(excl(2, 60, "pc"), SimTime::from_mins(60), SimTime::ZERO);
        let completes = c.submit(excl(1, 60, "ok"), SimTime::from_mins(30), SimTime::ZERO);
        c.try_schedule(SimTime::ZERO);
        c.cancel(pend_cancel, SimTime::from_secs(10)).unwrap();
        c.cancel(run_cancel, SimTime::from_secs(20)).unwrap();
        c.try_schedule(SimTime::from_secs(20));
        c.finish(completes, SimTime::from_mins(30)).unwrap();

        let cancelled: Vec<JobId> = c.cancelled_jobs().map(|j| j.id).collect();
        assert_eq!(cancelled, vec![infeasible, pend_cancel, run_cancel]);
        let completed: Vec<JobId> = c.completed_jobs().map(|j| j.id).collect();
        assert_eq!(completed, vec![completes]);
        assert_eq!(c.pending_count(), 0);
        assert_eq!(c.running_count(), 0);
        // Every cancelled job carries a terminal timestamp.
        assert!(c.cancelled_jobs().all(|j| j.finished_at.is_some()));
    }

    #[test]
    fn finish_errors() {
        let mut c = small_cluster(1);
        assert_eq!(
            c.finish(JobId(99), SimTime::ZERO).unwrap_err(),
            SchedulerError::UnknownJob
        );
        let a = c.submit(excl(1, 5, "a"), SimTime::from_mins(5), SimTime::ZERO);
        assert_eq!(
            c.finish(a, SimTime::ZERO).unwrap_err(),
            SchedulerError::NotRunning
        );
    }

    #[test]
    fn next_completion_uses_actual_runtime() {
        let mut c = small_cluster(2);
        let a = c.submit(excl(1, 100, "a"), SimTime::from_mins(30), SimTime::ZERO);
        let _b = c.submit(excl(1, 100, "b"), SimTime::from_mins(70), SimTime::ZERO);
        c.try_schedule(SimTime::ZERO);
        let (when, who) = c.next_completion().unwrap();
        assert_eq!(who, a);
        assert_eq!(when, SimTime::from_mins(30));
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut c = small_cluster(1);
        let a = c.submit(excl(1, 60, "a"), SimTime::from_mins(60), SimTime::ZERO);
        let b = c.submit(excl(1, 60, "b"), SimTime::from_mins(60), SimTime::ZERO);
        c.try_schedule(SimTime::ZERO);
        c.cancel(b, SimTime::from_secs(1)).unwrap();
        assert_eq!(c.job(b).unwrap().state, JobState::Cancelled);
        c.cancel(a, SimTime::from_secs(2)).unwrap();
        assert_eq!(c.job(a).unwrap().state, JobState::Cancelled);
        assert_eq!(c.idle_node_count(), 1);
        // Both cancellation paths feed the cancelled history; neither job
        // is in the completed ledger.
        assert_eq!(c.cancelled_count(), 2);
        assert_eq!(c.completed_jobs().count(), 0);
    }

    #[test]
    fn usage_accounting() {
        let mut c = small_cluster(2);
        let half = NodeResources {
            cores: 18,
            memory_mb: 32 * 1024,
            gpus: 0,
        };
        c.submit(
            JobSpec::shared(1, half, SimTime::from_mins(60), "a"),
            SimTime::from_mins(60),
            SimTime::ZERO,
        );
        c.try_schedule(SimTime::ZERO);
        let (used, total) = c.core_usage();
        assert_eq!((used, total), (18, 72));
        let (mem_used, free_alloc, free_idle) = c.memory_usage();
        assert_eq!(mem_used, 32 * 1024);
        assert_eq!(free_alloc, 96 * 1024);
        assert_eq!(free_idle, 128 * 1024);
    }

    #[test]
    fn idle_periods_reported_at_start() {
        let mut c = small_cluster(1);
        let a = c.submit(
            excl(1, 10, "a"),
            SimTime::from_mins(10),
            SimTime::from_mins(5),
        );
        let (_, periods) = c.try_schedule(SimTime::from_mins(5));
        assert_eq!(periods, vec![SimTime::from_mins(5)]);
        c.finish(a, SimTime::from_mins(15)).unwrap();
        c.submit(
            excl(1, 10, "b"),
            SimTime::from_mins(10),
            SimTime::from_mins(18),
        );
        let (_, periods) = c.try_schedule(SimTime::from_mins(18));
        assert_eq!(periods, vec![SimTime::from_mins(3)]);
    }

    #[test]
    fn node_mut_mutation_is_seen_by_the_next_pass() {
        // Marking a node down behind the scheduler's back must invalidate
        // the indexes: the downed node cannot be placed on, and a job that
        // fit before no longer starts.
        let mut c = small_cluster(2);
        c.node_mut(NodeId(0)).unwrap().set_down();
        let a = c.submit(excl(2, 10, "a"), SimTime::from_mins(10), SimTime::ZERO);
        let b = c.submit(excl(1, 10, "b"), SimTime::from_mins(10), SimTime::ZERO);
        let (started, _) = c.try_schedule(SimTime::ZERO);
        // `a` is feasible by static capacity (2 nodes exist) but only one is
        // placeable, so it blocks the queue; `b` cannot backfill ahead of it
        // because the downed node never frees (shadow time is reached but
        // only one node can host).
        assert!(!started.contains(&a));
        assert!(c.job(a).unwrap().state == JobState::Pending);
        let _ = b;
        assert_eq!(c.idle_node_count(), 1);
    }

    #[test]
    fn pending_queue_compaction_preserves_order() {
        // Flood the queue, cancel most of it (tombstones), and check the
        // survivors still start in arrival order after compaction kicks in.
        let mut c = small_cluster(1);
        let blocker = c.submit(excl(1, 600, "blk"), SimTime::from_mins(600), SimTime::ZERO);
        c.try_schedule(SimTime::ZERO);
        let mut ids = Vec::new();
        for i in 0..300 {
            ids.push(c.submit(
                excl(1, 30, &format!("j{i}")),
                SimTime::from_mins(10),
                SimTime::ZERO,
            ));
        }
        for (i, &id) in ids.iter().enumerate() {
            if i % 3 != 0 {
                c.cancel(id, SimTime::from_secs(1)).unwrap();
            }
        }
        assert_eq!(c.pending_count(), 100);
        c.finish(blocker, SimTime::from_mins(600)).unwrap();
        let survivors: Vec<JobId> = ids.iter().copied().step_by(3).collect();
        let mut started_order = Vec::new();
        let mut now = SimTime::from_mins(600);
        // One node: jobs start one at a time, in arrival order.
        loop {
            let (started, _) = c.try_schedule(now);
            started_order.extend(started);
            match c.next_completion() {
                Some((when, id)) => {
                    now = when;
                    c.finish(id, now).unwrap();
                }
                None => break,
            }
        }
        assert_eq!(started_order, survivors);
        assert_eq!(c.pending_count(), 0);
    }
}
