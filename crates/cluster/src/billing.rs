//! Core-hour accounting under three policies, matching the comparison of
//! Fig. 10:
//!
//! * **Realistic** — today's exclusive allocations: a job is billed for every
//!   core of every node it occupies, regardless of how many it requested.
//! * **IdealNonSharing** — a hypothetical system that bills only the
//!   requested cores but still blocks the remainder of the node (no one else
//!   can use it).
//! * **Disaggregation** — the paper's proposal: requested cores are billed to
//!   the job and the remaining resources are made available to serverless
//!   functions, billed separately to their own tenants.

use crate::job::JobSpec;
use des::SimTime;
use serde::Serialize;

/// Billing policy variants compared in Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BillingPolicy {
    Realistic,
    IdealNonSharing,
    Disaggregation,
}

/// One accounting entry.
#[derive(Debug, Clone, Serialize)]
pub struct ChargeRecord {
    pub tag: String,
    pub core_hours: f64,
    pub policy: BillingPolicy,
}

/// Accumulates charges and utilization.
#[derive(Debug, Default)]
pub struct BillingLedger {
    records: Vec<ChargeRecord>,
}

impl BillingLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge a batch job that ran for `runtime` on nodes with
    /// `node_cores` cores each, under `policy`.
    pub fn charge_job(
        &mut self,
        spec: &JobSpec,
        node_cores: u32,
        runtime: SimTime,
        policy: BillingPolicy,
    ) -> f64 {
        let hours = runtime.as_secs_f64() / 3600.0;
        let cores = match policy {
            BillingPolicy::Realistic => u64::from(spec.nodes) * u64::from(node_cores),
            BillingPolicy::IdealNonSharing | BillingPolicy::Disaggregation => spec.total_cores(),
        };
        let ch = cores as f64 * hours;
        self.records.push(ChargeRecord {
            tag: spec.tag.clone(),
            core_hours: ch,
            policy,
        });
        ch
    }

    /// Charge a serverless function occupying `cores` for `runtime`
    /// (only meaningful under [`BillingPolicy::Disaggregation`]).
    pub fn charge_function(&mut self, tag: &str, cores: u32, runtime: SimTime) -> f64 {
        let ch = f64::from(cores) * runtime.as_secs_f64() / 3600.0;
        self.records.push(ChargeRecord {
            tag: tag.to_string(),
            core_hours: ch,
            policy: BillingPolicy::Disaggregation,
        });
        ch
    }

    pub fn total_core_hours(&self) -> f64 {
        self.records.iter().map(|r| r.core_hours).sum()
    }

    pub fn core_hours_for(&self, tag: &str) -> f64 {
        self.records
            .iter()
            .filter(|r| r.tag == tag)
            .map(|r| r.core_hours)
            .sum()
    }

    pub fn records(&self) -> &[ChargeRecord] {
        &self.records
    }
}

/// Utilization of an allocation: the fraction of paid core-time doing useful
/// work. Inputs are in core-hours.
pub fn utilization(useful_core_hours: f64, billed_core_hours: f64) -> f64 {
    if billed_core_hours <= 0.0 {
        return f64::NAN;
    }
    useful_core_hours / billed_core_hours
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeResources;

    fn spec_32_of_36() -> JobSpec {
        JobSpec::shared(
            2,
            NodeResources {
                cores: 32,
                memory_mb: 64 * 1024,
                gpus: 0,
            },
            SimTime::from_hours(1),
            "lulesh",
        )
    }

    #[test]
    fn realistic_bills_whole_nodes() {
        let mut l = BillingLedger::new();
        let ch = l.charge_job(
            &spec_32_of_36(),
            36,
            SimTime::from_hours(1),
            BillingPolicy::Realistic,
        );
        assert!((ch - 72.0).abs() < 1e-9);
    }

    #[test]
    fn disaggregation_bills_requested_cores() {
        let mut l = BillingLedger::new();
        let ch = l.charge_job(
            &spec_32_of_36(),
            36,
            SimTime::from_hours(1),
            BillingPolicy::Disaggregation,
        );
        assert!((ch - 64.0).abs() < 1e-9);
        // The paper: requesting 32/36 cores => ~11% core-hour reduction.
        let saving = 1.0 - ch / 72.0;
        assert!((saving - 0.111).abs() < 0.01, "saving={saving}");
    }

    #[test]
    fn function_charges_accumulate_separately() {
        let mut l = BillingLedger::new();
        l.charge_job(
            &spec_32_of_36(),
            36,
            SimTime::from_hours(1),
            BillingPolicy::Disaggregation,
        );
        l.charge_function("nas-bt", 4, SimTime::from_hours(2));
        assert!((l.core_hours_for("nas-bt") - 8.0).abs() < 1e-9);
        assert!((l.total_core_hours() - 72.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_ratio() {
        assert!((utilization(64.0, 72.0) - 0.888).abs() < 1e-2);
        assert!(utilization(1.0, 0.0).is_nan());
    }
}
