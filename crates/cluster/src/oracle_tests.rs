//! Oracle property tests: the indexed scheduler must make bit-identical
//! decisions to the frozen scan implementation ([`crate::reference`]) under
//! arbitrary interleavings of arrivals, completions, and cancellations on a
//! heterogeneous (multi-capacity-class) cluster, for shared and exclusive
//! jobs alike. "Bit-identical" here means every observable the simulation
//! driver consumes: the started-job sequence and ended idle periods returned
//! by each `try_schedule`, the pending/idle/running counts, every job's
//! state and timestamps, and `next_completion`.
//!
//! These tests are unit tests (not integration tests) on purpose: the
//! reference module is `cfg(any(test, feature = "oracle"))`, and unit tests
//! see it without requiring callers to enable the feature.

use crate::reference::RefCluster;
use crate::scheduler::Cluster;
use crate::{JobId, JobSpec, Node, NodeResources};
use des::SimTime;
use fabric::NodeId;
use proptest::prelude::*;

/// Three capacity classes: multicore, GPU, and a fat-memory variant — so
/// class partitioning, the k-way class merge, and per-class shadow sets all
/// participate.
fn hetero_nodes(mc: usize, gpu: usize, fat: usize) -> Vec<Node> {
    let fat_cap = NodeResources {
        cores: 36,
        memory_mb: 256 * 1024,
        gpus: 0,
    };
    (0..mc)
        .map(|_| NodeResources::daint_mc())
        .chain((0..gpu).map(|_| NodeResources::daint_gpu()))
        .chain((0..fat).map(|_| fat_cap))
        .enumerate()
        .map(|(i, cap)| Node::new(NodeId(i as u32), cap))
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    /// Submit a job and run a scheduling pass.
    Submit { spec: JobSpec, actual_mins: u64 },
    /// Finish the earliest-completing running job (if any), then schedule.
    FinishEarliest,
    /// Cancel the `k % submitted`-th job regardless of its state, then
    /// schedule — exercises pending tombstones and running release.
    Cancel { k: usize },
    /// Let simulated time pass before the next op.
    Advance { mins: u64 },
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        1u32..6,   // nodes
        0usize..4, // shape selector
        5u64..600, // walltime minutes
        any::<bool>(),
    )
        .prop_map(|(nodes, shape, wall, shared)| {
            // Shapes chosen to fit one, two, or all three capacity classes,
            // and (for shared) to leave room for co-location.
            let per_node = match shape {
                0 => NodeResources {
                    cores: 9,
                    memory_mb: 16 * 1024,
                    gpus: 0,
                }, // fits everywhere, shares 4-way
                1 => NodeResources::daint_mc(), // excludes the 12-core GPU class
                2 => NodeResources {
                    cores: 4,
                    memory_mb: 8 * 1024,
                    gpus: 1,
                }, // GPU class only
                _ => NodeResources {
                    cores: 18,
                    memory_mb: 192 * 1024,
                    gpus: 0,
                }, // fat-memory class only
            };
            let wall_t = SimTime::from_mins(wall);
            if shared {
                JobSpec::shared(nodes, per_node, wall_t, "oracle")
            } else {
                JobSpec::exclusive(nodes, per_node, wall_t, "oracle")
            }
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..10, arb_spec(), 1u64..400, 0usize..64, 1u64..90).prop_map(
        |(sel, spec, actual_mins, k, mins)| match sel {
            0..=4 => Op::Submit { spec, actual_mins },
            5 | 6 => Op::FinishEarliest,
            7 | 8 => Op::Cancel { k },
            _ => Op::Advance { mins },
        },
    )
}

/// Apply one op to both clusters and compare every observable.
fn step(
    c: &mut Cluster,
    r: &mut RefCluster,
    op: &Op,
    now: &mut SimTime,
    submitted: &mut Vec<JobId>,
) -> Result<(), TestCaseError> {
    let schedule_both = |c: &mut Cluster, r: &mut RefCluster, now: SimTime| {
        let got = c.try_schedule(now);
        let want = r.try_schedule(now);
        (got, want)
    };
    match op {
        Op::Submit { spec, actual_mins } => {
            let actual = SimTime::from_mins(*actual_mins);
            let a = c.submit(spec.clone(), actual, *now);
            let b = r.submit(spec.clone(), actual, *now);
            prop_assert_eq!(a, b, "job ids diverged");
            submitted.push(a);
            let (got, want) = schedule_both(c, r, *now);
            prop_assert_eq!(got, want, "schedule after submit @ {:?}", now);
        }
        Op::FinishEarliest => {
            let a = c.next_completion();
            let b = r.next_completion();
            prop_assert_eq!(a, b, "next_completion diverged");
            if let Some((when, id)) = a {
                *now = (*now).max(when);
                prop_assert_eq!(c.finish(id, *now).is_ok(), r.finish(id, *now).is_ok());
                let (got, want) = schedule_both(c, r, *now);
                prop_assert_eq!(got, want, "schedule after finish @ {:?}", now);
            }
        }
        Op::Cancel { k } => {
            if submitted.is_empty() {
                return Ok(());
            }
            let id = submitted[k % submitted.len()];
            prop_assert_eq!(
                c.cancel(id, *now).is_ok(),
                r.cancel(id, *now).is_ok(),
                "cancel outcome diverged for {:?}",
                id
            );
            let (got, want) = schedule_both(c, r, *now);
            prop_assert_eq!(got, want, "schedule after cancel @ {:?}", now);
        }
        Op::Advance { mins } => {
            *now += SimTime::from_mins(*mins);
        }
    }
    // Cross-cutting invariants after every op.
    prop_assert_eq!(c.pending_count(), r.pending_count(), "pending diverged");
    prop_assert_eq!(
        c.idle_node_count(),
        r.idle_node_count(),
        "idle nodes diverged"
    );
    prop_assert_eq!(c.next_completion(), r.next_completion());
    for &id in submitted.iter() {
        let a = c.job(id).expect("tracked");
        let b = r.job(id).expect("tracked");
        prop_assert_eq!(a.state, b.state, "state diverged for {:?}", id);
        prop_assert_eq!(a.started_at, b.started_at, "start diverged for {:?}", id);
        prop_assert_eq!(a.finished_at, b.finished_at, "finish diverged for {:?}", id);
        prop_assert_eq!(&a.assigned, &b.assigned, "placement diverged for {:?}", id);
    }
    // The terminal ledgers partition the terminal jobs (indexed side only;
    // the reference predates the cancelled ledger).
    let terminal = submitted
        .iter()
        .filter(|id| {
            matches!(
                c.job(**id).unwrap().state,
                crate::JobState::Completed | crate::JobState::Cancelled
            )
        })
        .count();
    prop_assert_eq!(
        c.completed_jobs().count() + c.cancelled_count(),
        terminal,
        "terminal ledgers lost or duplicated a job"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_scheduler_matches_scan_oracle(
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        let mut c = Cluster::new(hetero_nodes(8, 5, 3));
        let mut r = RefCluster::new(hetero_nodes(8, 5, 3));
        let mut now = SimTime::ZERO;
        let mut submitted = Vec::new();
        for op in &ops {
            step(&mut c, &mut r, op, &mut now, &mut submitted)?;
        }
    }

    #[test]
    fn indexed_scheduler_matches_oracle_on_homogeneous_backlog(
        ops in prop::collection::vec(arb_op(), 1..160),
    ) {
        // Few nodes => deep queues => the backfill loop and tombstone
        // compaction dominate.
        let mut c = Cluster::homogeneous(4, NodeResources::daint_mc());
        let mut r = RefCluster::homogeneous(4, NodeResources::daint_mc());
        let mut now = SimTime::ZERO;
        let mut submitted = Vec::new();
        for op in &ops {
            step(&mut c, &mut r, op, &mut now, &mut submitted)?;
        }
    }
}
