//! Utilization sampling, reproducing the methodology behind Fig. 1: the
//! paper queried SLURM every two minutes for a month and derived idle-CPU
//! rates, the free-memory split, and idle-period durations *estimated from
//! discrete sampling* (hence the "minimal" and "maximal" estimation panels of
//! Fig. 1c). We record both the sampled estimates and the simulator's ground
//! truth.

use crate::scheduler::Cluster;
use des::{Percentiles, SimTime};
use fabric::NodeId;
use serde::Serialize;
use std::collections::HashMap;

/// Summary statistics over idle-period durations.
#[derive(Debug, Clone, Serialize)]
pub struct IdlePeriodStats {
    pub events: usize,
    pub median_min: f64,
    pub mean_min: f64,
    /// Fraction of idle events shorter than ten minutes — the paper's
    /// headline "70–80% of idle events last less than 10 minutes".
    pub frac_below_10min: f64,
}

impl IdlePeriodStats {
    fn from_percentiles(p: &mut Percentiles) -> Self {
        if p.is_empty() {
            return IdlePeriodStats {
                events: 0,
                median_min: f64::NAN,
                mean_min: f64::NAN,
                frac_below_10min: f64::NAN,
            };
        }
        IdlePeriodStats {
            events: p.len(),
            median_min: p.median() / 60.0,
            mean_min: p.mean() / 60.0,
            frac_below_10min: p.cdf_at(600.0),
        }
    }
}

/// Full monitoring report (Fig. 1 panels).
#[derive(Debug, Clone, Serialize)]
pub struct MonitorReport {
    /// (time, idle CPU %) — Fig. 1a.
    pub idle_cpu_pct: Vec<(f64, f64)>,
    /// (time, used %, free-on-allocated %, free-on-idle %) — Fig. 1b.
    pub memory_split_pct: Vec<(f64, f64, f64, f64)>,
    /// Idle node count at each sample.
    pub idle_nodes: Vec<usize>,
    pub median_idle_nodes: f64,
    /// Ground-truth idle periods (exact transition times).
    pub exact: IdlePeriodStats,
    /// Discrete-sampling lower bound: `(k-1) * interval` for `k` consecutive
    /// idle samples.
    pub minimal_estimation: IdlePeriodStats,
    /// Discrete-sampling upper bound: `(k+1) * interval`.
    pub maximal_estimation: IdlePeriodStats,
}

/// Samples a [`Cluster`] at a fixed interval.
pub struct UtilizationMonitor {
    interval: SimTime,
    idle_cpu_pct: Vec<(f64, f64)>,
    memory_split_pct: Vec<(f64, f64, f64, f64)>,
    idle_nodes: Vec<usize>,
    exact_periods: Percentiles,
    /// consecutive idle-sample run length per node
    idle_runs: HashMap<NodeId, u32>,
    minimal: Percentiles,
    maximal: Percentiles,
}

impl UtilizationMonitor {
    /// The paper samples every two minutes.
    pub fn two_minute() -> Self {
        Self::new(SimTime::from_mins(2))
    }

    pub fn new(interval: SimTime) -> Self {
        assert!(!interval.is_zero());
        UtilizationMonitor {
            interval,
            idle_cpu_pct: Vec::new(),
            memory_split_pct: Vec::new(),
            idle_nodes: Vec::new(),
            exact_periods: Percentiles::new(),
            idle_runs: HashMap::new(),
            minimal: Percentiles::new(),
            maximal: Percentiles::new(),
        }
    }

    pub fn interval(&self) -> SimTime {
        self.interval
    }

    /// Record a ground-truth idle period (from the scheduler's allocation
    /// path).
    pub fn record_exact_idle_period(&mut self, period: SimTime) {
        self.exact_periods.push(period.as_secs_f64());
    }

    /// Take one sample of the cluster state.
    pub fn sample(&mut self, cluster: &Cluster, now: SimTime) {
        let t_days = now.as_secs_f64() / 86_400.0;

        let (used_cores, total_cores) = cluster.core_usage();
        let idle_pct = 100.0 * (total_cores - used_cores) as f64 / total_cores.max(1) as f64;
        self.idle_cpu_pct.push((t_days, idle_pct));

        let (mem_used, free_alloc, free_idle) = cluster.memory_usage();
        let total_mem = (mem_used + free_alloc + free_idle).max(1) as f64;
        self.memory_split_pct.push((
            t_days,
            100.0 * mem_used as f64 / total_mem,
            100.0 * free_alloc as f64 / total_mem,
            100.0 * free_idle as f64 / total_mem,
        ));

        self.idle_nodes.push(cluster.idle_node_count());

        // Discrete idle-period estimation: extend runs for idle nodes, close
        // runs for nodes that stopped being idle.
        let interval_s = self.interval.as_secs_f64();
        for node in cluster.nodes() {
            if node.is_idle() {
                *self.idle_runs.entry(node.id).or_insert(0) += 1;
            } else if let Some(k) = self.idle_runs.remove(&node.id) {
                self.close_run(k, interval_s);
            }
        }
    }

    fn close_run(&mut self, k: u32, interval_s: f64) {
        debug_assert!(k > 0);
        self.minimal.push((k.saturating_sub(1)) as f64 * interval_s);
        self.maximal.push((k + 1) as f64 * interval_s);
    }

    /// Close all open runs (end of trace) and produce the report.
    pub fn finish(mut self) -> MonitorReport {
        let interval_s = self.interval.as_secs_f64();
        let runs: Vec<u32> = self.idle_runs.drain().map(|(_, k)| k).collect();
        for k in runs {
            self.close_run(k, interval_s);
        }
        let median_idle_nodes = {
            let mut p = Percentiles::new();
            for &n in &self.idle_nodes {
                p.push(n as f64);
            }
            if p.is_empty() {
                f64::NAN
            } else {
                p.median()
            }
        };
        MonitorReport {
            idle_cpu_pct: self.idle_cpu_pct,
            memory_split_pct: self.memory_split_pct,
            idle_nodes: self.idle_nodes,
            median_idle_nodes,
            exact: IdlePeriodStats::from_percentiles(&mut self.exact_periods),
            minimal_estimation: IdlePeriodStats::from_percentiles(&mut self.minimal),
            maximal_estimation: IdlePeriodStats::from_percentiles(&mut self.maximal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::node::NodeResources;

    fn spec(nodes: u32) -> JobSpec {
        JobSpec::exclusive(
            nodes,
            NodeResources::daint_mc(),
            SimTime::from_mins(30),
            "t",
        )
    }

    #[test]
    fn samples_capture_idle_fraction() {
        let mut c = Cluster::homogeneous(4, NodeResources::daint_mc());
        let mut m = UtilizationMonitor::two_minute();
        m.sample(&c, SimTime::ZERO);
        c.submit(spec(2), SimTime::from_mins(30), SimTime::ZERO);
        c.try_schedule(SimTime::ZERO);
        m.sample(&c, SimTime::from_mins(2));
        let report = m.finish();
        assert_eq!(report.idle_cpu_pct[0].1, 100.0);
        assert_eq!(report.idle_cpu_pct[1].1, 50.0);
        assert_eq!(report.idle_nodes, vec![4, 2]);
    }

    #[test]
    fn memory_split_sums_to_100() {
        let mut c = Cluster::homogeneous(4, NodeResources::daint_mc());
        let half = NodeResources {
            cores: 18,
            memory_mb: 64 * 1024,
            gpus: 0,
        };
        c.submit(
            JobSpec::shared(2, half, SimTime::from_mins(30), "t"),
            SimTime::from_mins(30),
            SimTime::ZERO,
        );
        c.try_schedule(SimTime::ZERO);
        let mut m = UtilizationMonitor::two_minute();
        m.sample(&c, SimTime::ZERO);
        let r = m.finish();
        let (_, used, fa, fi) = r.memory_split_pct[0];
        assert!((used + fa + fi - 100.0).abs() < 1e-9);
        assert!((used - 25.0).abs() < 1e-9); // 2×64 GB of 4×128 GB
        assert!((fi - 50.0).abs() < 1e-9); // 2 idle nodes
    }

    #[test]
    fn discrete_estimation_brackets_truth() {
        // Node idle for exactly 5 samples (k=5) at 2-min interval:
        // minimal (k-1)*2 = 8 min, maximal (k+1)*2 = 12 min.
        let mut c = Cluster::homogeneous(1, NodeResources::daint_mc());
        let mut m = UtilizationMonitor::two_minute();
        for i in 0..5 {
            m.sample(&c, SimTime::from_mins(2 * i));
        }
        let id = c.submit(spec(1), SimTime::from_mins(30), SimTime::from_mins(9));
        let (_, periods) = c.try_schedule(SimTime::from_mins(9));
        for p in periods {
            m.record_exact_idle_period(p);
        }
        m.sample(&c, SimTime::from_mins(10));
        c.finish(id, SimTime::from_mins(11)).unwrap();
        let r = m.finish();
        assert_eq!(r.minimal_estimation.events, 1);
        assert!((r.minimal_estimation.median_min - 8.0).abs() < 1e-9);
        assert!((r.maximal_estimation.median_min - 12.0).abs() < 1e-9);
        assert!((r.exact.median_min - 9.0).abs() < 1e-9);
        assert!(
            r.minimal_estimation.median_min <= r.exact.median_min
                && r.exact.median_min <= r.maximal_estimation.median_min
        );
    }

    #[test]
    fn open_runs_closed_at_finish() {
        let c = Cluster::homogeneous(3, NodeResources::daint_mc());
        let mut m = UtilizationMonitor::two_minute();
        for i in 0..4 {
            m.sample(&c, SimTime::from_mins(2 * i));
        }
        let r = m.finish();
        assert_eq!(r.minimal_estimation.events, 3, "one event per idle node");
    }

    #[test]
    fn empty_monitor_reports_nan() {
        let m = UtilizationMonitor::two_minute();
        let r = m.finish();
        assert!(r.median_idle_nodes.is_nan());
        assert_eq!(r.exact.events, 0);
    }
}
