//! The original scan-everything scheduler, kept verbatim as a test/bench
//! oracle for the indexed implementation in [`crate::scheduler`].
//!
//! [`RefCluster`] is the pre-PR-9 `Cluster`: `find_nodes` filters all nodes
//! and top-k-selects per attempt, `shadow_time` rebuilds a full
//! `(free_at, node)` vector per backfill pass, `is_feasible` re-counts
//! fitting nodes, and backfill extraction is `VecDeque::remove`. Every
//! scheduling decision of the indexed scheduler must be bit-identical to
//! this module — enforced by the property tests in
//! `scheduler::oracle_tests` (arbitrary submit/schedule/finish/cancel
//! interleavings) and measured like-for-like by the `cluster_sched` bench
//! (compile with `--features oracle`).
//!
//! Do not "fix" or optimize this module: its value is being the frozen
//! semantics the committed `ci/trace_reference.json` was generated from.

use crate::job::{Job, JobId, JobSpec, JobState};
use crate::node::{Node, NodeResources};
use crate::scheduler::SchedulerError;
use des::SimTime;
use fabric::NodeId;
use std::collections::{HashMap, VecDeque};

/// The pre-index cluster state machine (scan-based hot paths).
pub struct RefCluster {
    nodes: Vec<Node>,
    jobs: HashMap<JobId, Job>,
    pending: VecDeque<JobId>,
    next_id: u64,
    completed: Vec<JobId>,
}

impl RefCluster {
    pub fn new(nodes: Vec<Node>) -> Self {
        RefCluster {
            nodes,
            jobs: HashMap::new(),
            pending: VecDeque::new(),
            next_id: 0,
            completed: Vec::new(),
        }
    }

    pub fn homogeneous(n: usize, capacity: NodeResources) -> Self {
        RefCluster::new(
            (0..n)
                .map(|i| Node::new(NodeId(i as u32), capacity))
                .collect(),
        )
    }

    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0 as usize)
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    pub fn idle_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_idle()).count()
    }

    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    pub fn submit(&mut self, spec: JobSpec, actual_runtime: SimTime, now: SimTime) -> JobId {
        self.next_id += 1;
        let id = JobId(self.next_id);
        let runtime = actual_runtime.min(spec.walltime);
        self.jobs.insert(id, Job::new(id, spec, now, runtime));
        self.pending.push_back(id);
        id
    }

    pub fn is_feasible(&self, spec: &JobSpec) -> bool {
        let fitting = self
            .nodes
            .iter()
            .filter(|n| n.capacity.fits(&spec.per_node))
            .count();
        fitting >= spec.nodes as usize
    }

    fn find_nodes(&self, spec: &JobSpec) -> Option<Vec<NodeId>> {
        let key = |n: &&Node| {
            (
                std::cmp::Reverse(n.idle_since().unwrap_or(SimTime::MAX)),
                n.id,
            )
        };
        let mut candidates: Vec<&Node> = self
            .nodes
            .iter()
            .filter(|n| n.can_host(&spec.per_node, spec.shared))
            .collect();
        let k = spec.nodes as usize;
        if candidates.len() < k {
            return None;
        }
        if k == 0 {
            return Some(Vec::new());
        }
        if candidates.len() > k {
            candidates.select_nth_unstable_by_key(k - 1, key);
            candidates.truncate(k);
        }
        candidates.sort_unstable_by_key(key);
        Some(candidates.iter().map(|n| n.id).collect())
    }

    fn start_job(&mut self, id: JobId, nodes: Vec<NodeId>, now: SimTime) -> Vec<SimTime> {
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Running;
        job.started_at = Some(now);
        job.assigned = nodes.clone();
        let per_node = job.spec.per_node;
        let exclusive = !job.spec.shared;
        let mut ended_idle_periods = Vec::new();
        for nid in nodes {
            let node = self.nodes.get_mut(nid.0 as usize).expect("node exists");
            if let Some(p) = node.allocate(id, per_node, exclusive, now) {
                ended_idle_periods.push(p);
            }
        }
        ended_idle_periods
    }

    fn shadow_time(&self, head: &JobSpec, now: SimTime) -> SimTime {
        let mut node_free_at: Vec<(SimTime, &Node)> = self
            .nodes
            .iter()
            .filter(|n| n.capacity.fits(&head.per_node))
            .map(|n| {
                let free_at = n
                    .jobs()
                    .filter_map(|jid| self.jobs.get(&jid))
                    .filter_map(|j| j.started_at.map(|s| s + j.spec.walltime))
                    .max()
                    .unwrap_or(now);
                (free_at.max(now), n)
            })
            .collect();
        node_free_at.sort_by_key(|(t, n)| (*t, n.id));
        if node_free_at.len() < head.nodes as usize {
            return SimTime::MAX;
        }
        node_free_at[head.nodes as usize - 1].0
    }

    pub fn try_schedule(&mut self, now: SimTime) -> (Vec<JobId>, Vec<SimTime>) {
        let mut started = Vec::new();
        let mut idle_periods = Vec::new();

        while let Some(&head) = self.pending.front() {
            if !self.is_feasible(&self.jobs[&head].spec) {
                self.pending.pop_front();
                if let Some(j) = self.jobs.get_mut(&head) {
                    j.state = JobState::Cancelled;
                    j.finished_at = Some(now);
                }
                continue;
            }
            match self.find_nodes(&self.jobs[&head].spec) {
                Some(nodes) => {
                    self.pending.pop_front();
                    idle_periods.extend(self.start_job(head, nodes, now));
                    started.push(head);
                }
                None => break,
            }
        }

        if let Some(&head) = self.pending.front() {
            let shadow = self.shadow_time(&self.jobs[&head].spec, now);
            let mut i = 1;
            while i < self.pending.len() {
                let jid = self.pending[i];
                let fits_before_shadow = now + self.jobs[&jid].spec.walltime <= shadow;
                if fits_before_shadow {
                    if let Some(nodes) = self.find_nodes(&self.jobs[&jid].spec) {
                        self.pending.remove(i);
                        idle_periods.extend(self.start_job(jid, nodes, now));
                        started.push(jid);
                        continue; // do not advance i; element shifted in
                    }
                }
                i += 1;
            }
        }

        (started, idle_periods)
    }

    pub fn finish(&mut self, id: JobId, now: SimTime) -> Result<(), SchedulerError> {
        let job = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob)?;
        if job.state != JobState::Running {
            return Err(SchedulerError::NotRunning);
        }
        job.state = JobState::Completed;
        job.finished_at = Some(now);
        let assigned = std::mem::take(&mut job.assigned);
        for nid in &assigned {
            if let Some(node) = self.nodes.get_mut(nid.0 as usize) {
                node.release(id, now);
            }
        }
        self.jobs.get_mut(&id).expect("exists").assigned = assigned;
        self.completed.push(id);
        Ok(())
    }

    pub fn cancel(&mut self, id: JobId, now: SimTime) -> Result<(), SchedulerError> {
        let job = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob)?;
        match job.state {
            JobState::Pending => {
                job.state = JobState::Cancelled;
                job.finished_at = Some(now);
                self.pending.retain(|&j| j != id);
                Ok(())
            }
            JobState::Running => {
                self.finish(id, now)?;
                self.jobs.get_mut(&id).expect("exists").state = JobState::Cancelled;
                Ok(())
            }
            _ => Err(SchedulerError::NotRunning),
        }
    }

    pub fn next_completion(&self) -> Option<(SimTime, JobId)> {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .filter_map(|j| j.started_at.map(|s| (s + j.actual_runtime, j.id)))
            .min()
    }
}
