//! Synthetic workload traces calibrated to the Piz Daint March-2022
//! statistics the paper reports in Fig. 1 and Sec. II-A:
//!
//! * node utilization in the 80–94% band seen on production systems,
//! * median number of idle nodes ≈ 250 (of ~1800 scaled nodes here),
//! * 70–80% of idle-node events shorter than 10 minutes,
//! * median idle availability between 5 and 6.5 minutes,
//! * average node memory usage around 24% of capacity.
//!
//! The generator draws job sizes from a heavy-tailed discrete distribution
//! (most jobs small, few at 256+ nodes — consistent with Patel et al. and the
//! Blue Waters workload study cited by the paper), log-normal runtimes, and
//! Poisson arrivals. The trace is replayed against the [`Cluster`] scheduler
//! inside a [`des::Simulation`], with a [`UtilizationMonitor`] sampling every
//! two minutes exactly as the paper's measurement script did.

use crate::job::JobSpec;
use crate::monitor::{MonitorReport, UtilizationMonitor};
use crate::node::NodeResources;
use crate::scheduler::Cluster;
use des::{RngStream, SimTime, Simulation};
use serde::Serialize;
use std::sync::{Arc, Mutex};

/// Tunable description of a synthetic workload.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    pub nodes: usize,
    pub node_capacity: NodeResources,
    /// Mean inter-arrival time of jobs (Poisson process), seconds.
    pub mean_interarrival_s: f64,
    /// Job node-count buckets and their weights.
    pub size_buckets: Vec<(u32, f64)>,
    /// Log-normal runtime parameters (of the underlying normal, seconds).
    pub runtime_mu: f64,
    pub runtime_sigma: f64,
    /// Cap on runtimes (queue limit).
    pub max_runtime: SimTime,
    /// Users over-estimate walltime by this factor range.
    pub walltime_factor: (f64, f64),
    /// Mean fraction of node memory a job actually requests.
    pub mem_fraction_mean: f64,
    /// Fraction of jobs submitted with the shared flag.
    pub shared_fraction: f64,
}

impl TraceProfile {
    /// Scaled-down Piz Daint (1/3 of the 5704 nodes) with the March-2022
    /// load characteristics.
    pub fn piz_daint() -> Self {
        TraceProfile {
            nodes: 1800,
            node_capacity: NodeResources::daint_mc(),
            mean_interarrival_s: 66.0,
            size_buckets: vec![
                (1, 0.53),
                (2, 0.10),
                (4, 0.09),
                (8, 0.08),
                (16, 0.07),
                (32, 0.05),
                (64, 0.04),
                (128, 0.02),
                (256, 0.015),
                (512, 0.005),
            ],
            runtime_mu: 7.6,    // median ≈ 33 min
            runtime_sigma: 1.6, // heavy tail up to hours
            max_runtime: SimTime::from_hours(24),
            walltime_factor: (1.2, 3.0),
            mem_fraction_mean: 0.24,
            shared_fraction: 0.0,
        }
    }

    /// A small profile for fast tests.
    pub fn small_test() -> Self {
        TraceProfile {
            nodes: 32,
            node_capacity: NodeResources::daint_mc(),
            mean_interarrival_s: 20.0,
            size_buckets: vec![(1, 0.6), (2, 0.25), (4, 0.15)],
            runtime_mu: 5.5,
            runtime_sigma: 1.0,
            max_runtime: SimTime::from_hours(2),
            walltime_factor: (1.2, 2.0),
            mem_fraction_mean: 0.24,
            shared_fraction: 0.0,
        }
    }

    /// Draw one job (spec + actual runtime) from the profile.
    pub fn draw_job(&self, rng: &mut RngStream) -> (JobSpec, SimTime) {
        let weights: Vec<f64> = self.size_buckets.iter().map(|(_, w)| *w).collect();
        let nodes = self.size_buckets[rng.weighted_index(&weights)].0;

        let runtime_s = rng
            .log_normal(self.runtime_mu, self.runtime_sigma)
            .min(self.max_runtime.as_secs_f64());
        let runtime = SimTime::from_secs_f64(runtime_s.max(10.0));
        let factor = rng.range(self.walltime_factor.0..self.walltime_factor.1);
        let walltime = (runtime * factor).min(self.max_runtime);

        // Memory request: log-normal around the mean fraction, clamped.
        let frac = (self.mem_fraction_mean * rng.log_normal(0.0, 0.7)).clamp(0.02, 0.95);
        let mem = ((self.node_capacity.memory_mb as f64) * frac) as u64;

        let shared = rng.chance(self.shared_fraction);
        let per_node = NodeResources {
            cores: self.node_capacity.cores,
            memory_mb: mem,
            gpus: 0,
        };
        let spec = if shared {
            // Shared jobs leave cores free for functions (job striping).
            let striped = NodeResources {
                cores: (self.node_capacity.cores as f64 * 0.9) as u32,
                ..per_node
            };
            JobSpec::shared(nodes, striped, walltime, "trace")
        } else {
            JobSpec::exclusive(nodes, per_node, walltime, "trace")
        };
        (spec, runtime)
    }
}

/// Result of replaying a trace.
#[derive(Debug, Serialize)]
pub struct TraceOutcome {
    pub report: MonitorReport,
    pub jobs_submitted: usize,
    pub jobs_completed: usize,
    /// Time-averaged core utilization over the horizon, in percent.
    pub mean_core_utilization_pct: f64,
}

struct TraceState {
    cluster: Mutex<Cluster>,
    monitor: Mutex<UtilizationMonitor>,
    profile: TraceProfile,
    rng: Mutex<RngStream>,
    horizon: SimTime,
    submitted: Mutex<usize>,
    completed: Mutex<usize>,
}

fn schedule_and_register_completions(sim: &mut Simulation, st: &Arc<TraceState>) {
    let now = sim.now();
    // One lock acquisition covers scheduling *and* the runtime lookups for
    // every started job — this runs once per arrival and once per completion,
    // so per-job re-locking was the replay hot path.
    let (started, idle_periods) = {
        let mut cluster = st.cluster.lock().unwrap();
        let (started, idle_periods) = cluster.try_schedule(now);
        let started: Vec<_> = started
            .into_iter()
            .map(|id| (id, cluster.job(id).expect("job").actual_runtime))
            .collect();
        (started, idle_periods)
    };
    {
        let mut mon = st.monitor.lock().unwrap();
        for p in idle_periods {
            mon.record_exact_idle_period(p);
        }
    }
    // Batch the completion timers: one arrival can start a whole backlog of
    // queued jobs, and `schedule_batch` reserves arena capacity for the run
    // once instead of growing per event. Each closure captures an `Arc` plus
    // a job id — two words, so every completion stays on the inline-cell
    // path (no per-event allocation).
    sim.schedule_batch(started.into_iter().map(|(id, runtime)| {
        let st2 = Arc::clone(st);
        let fire = move |sim: &mut Simulation| {
            let now = sim.now();
            st2.cluster
                .lock()
                .unwrap()
                .finish(id, now)
                .expect("running job finishes");
            *st2.completed.lock().unwrap() += 1;
            schedule_and_register_completions(sim, &st2);
        };
        (now + runtime, fire)
    }));
}

fn arrival(sim: &mut Simulation, st: Arc<TraceState>) {
    let now = sim.now();
    if now >= st.horizon {
        return;
    }
    {
        let mut rng = st.rng.lock().unwrap();
        let (spec, runtime) = st.profile.draw_job(&mut rng);
        st.cluster.lock().unwrap().submit(spec, runtime, now);
        *st.submitted.lock().unwrap() += 1;
    }
    schedule_and_register_completions(sim, &st);

    let dt = {
        let mut rng = st.rng.lock().unwrap();
        SimTime::from_secs_f64(rng.exponential(st.profile.mean_interarrival_s))
    };
    let st2 = Arc::clone(&st);
    sim.schedule_after(dt.max(SimTime::from_nanos(1)), move |sim| arrival(sim, st2));
}

fn sampler(sim: &mut Simulation, st: Arc<TraceState>) {
    let now = sim.now();
    if now > st.horizon {
        return;
    }
    let interval = st.monitor.lock().unwrap().interval();
    st.monitor
        .lock()
        .unwrap()
        .sample(&st.cluster.lock().unwrap(), now);
    let st2 = Arc::clone(&st);
    sim.schedule_after(interval, move |sim| sampler(sim, st2));
}

/// Replay `profile` for `horizon` of virtual time and report Fig.-1-style
/// statistics. Deterministic in `seed`.
pub fn simulate_trace(profile: &TraceProfile, horizon: SimTime, seed: u64) -> TraceOutcome {
    let mut sim = Simulation::new(seed);
    simulate_trace_in(&mut sim, profile, horizon)
}

/// Replay `profile` against an externally owned [`Simulation`] — the entry
/// point the scenario sweep runner uses, where each worker thread constructs
/// its own engine. Must be called on a fresh simulation (`now == 0`);
/// determinism follows from the engine's root seed.
pub fn simulate_trace_in(
    sim: &mut Simulation,
    profile: &TraceProfile,
    horizon: SimTime,
) -> TraceOutcome {
    assert_eq!(
        sim.now(),
        SimTime::ZERO,
        "trace replay expects a fresh simulation"
    );
    let st = Arc::new(TraceState {
        cluster: Mutex::new(Cluster::homogeneous(profile.nodes, profile.node_capacity)),
        monitor: Mutex::new(UtilizationMonitor::two_minute()),
        profile: profile.clone(),
        rng: Mutex::new(sim.stream("trace")),
        horizon,
        submitted: Mutex::new(0),
        completed: Mutex::new(0),
    });

    // Warm-up arrivals start immediately; sampling starts after a warm-up
    // window so the initially-empty system does not bias the statistics.
    let st_a = Arc::clone(&st);
    sim.schedule_at(SimTime::ZERO, move |sim| arrival(sim, st_a));
    let st_s = Arc::clone(&st);
    let warmup = SimTime::from_hours(6).min(horizon / 10);
    sim.schedule_at(warmup, move |sim| sampler(sim, st_s));

    sim.run_until(horizon);

    // Events queued past the horizon may still hold `Arc<TraceState>`
    // clones inside the caller's engine, so harvest through the locks
    // instead of unwrapping the Arc.
    let submitted = *st.submitted.lock().unwrap();
    let completed = *st.completed.lock().unwrap();
    let monitor = std::mem::replace(
        &mut *st.monitor.lock().unwrap(),
        UtilizationMonitor::two_minute(),
    );
    let report = monitor.finish();
    let mean_util = {
        let vals: Vec<f64> = report
            .idle_cpu_pct
            .iter()
            .map(|(_, idle)| 100.0 - idle)
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    TraceOutcome {
        report,
        jobs_submitted: submitted,
        jobs_completed: completed,
        mean_core_utilization_pct: mean_util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_trace_runs_and_reports() {
        let profile = TraceProfile::small_test();
        let out = simulate_trace(&profile, SimTime::from_hours(12), 42);
        assert!(out.jobs_submitted > 100, "submitted={}", out.jobs_submitted);
        assert!(out.jobs_completed > 50);
        assert!(out.jobs_completed <= out.jobs_submitted);
        assert!(!out.report.idle_cpu_pct.is_empty());
        assert!(out.mean_core_utilization_pct > 10.0);
        assert!(out.mean_core_utilization_pct <= 100.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let profile = TraceProfile::small_test();
        let a = simulate_trace(&profile, SimTime::from_hours(6), 7);
        let b = simulate_trace(&profile, SimTime::from_hours(6), 7);
        assert_eq!(a.jobs_submitted, b.jobs_submitted);
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert_eq!(a.report.idle_nodes, b.report.idle_nodes);
        let c = simulate_trace(&profile, SimTime::from_hours(6), 8);
        assert_ne!(a.jobs_submitted, c.jobs_submitted);
    }

    #[test]
    fn trace_replay_stays_on_the_inline_event_path() {
        // Every closure the replay schedules — arrivals, the sampler, and
        // batched completions — captures at most an `Arc` plus a job id, so
        // the whole workload must hit the engine's inline payload cells; a
        // capture growing past three words would silently reintroduce a
        // heap allocation per event.
        let profile = TraceProfile::small_test();
        let mut sim = Simulation::new(11);
        let out = simulate_trace_in(&mut sim, &profile, SimTime::from_hours(12));
        assert!(out.jobs_completed > 0);
        assert!(sim.events_scheduled_inline() > 0);
        assert_eq!(
            sim.inline_hit_ratio(),
            1.0,
            "trace replay closures must fit the inline capture budget \
             ({} boxed)",
            sim.events_scheduled_boxed()
        );
    }

    #[test]
    fn draw_job_respects_bounds() {
        let profile = TraceProfile::piz_daint();
        let mut rng = RngStream::from_seed(3);
        for _ in 0..500 {
            let (spec, runtime) = profile.draw_job(&mut rng);
            assert!(profile.size_buckets.iter().any(|(n, _)| *n == spec.nodes));
            assert!(runtime <= profile.max_runtime);
            assert!(
                runtime <= spec.walltime * 1.0 + SimTime::from_secs(1)
                    || spec.walltime == profile.max_runtime
            );
            assert!(spec.per_node.memory_mb <= profile.node_capacity.memory_mb);
            assert!(spec.per_node.memory_mb > 0);
        }
    }

    #[test]
    fn estimation_brackets_exact_median() {
        let profile = TraceProfile::small_test();
        let out = simulate_trace(&profile, SimTime::from_hours(24), 11);
        let r = &out.report;
        if r.exact.events > 10 && r.minimal_estimation.events > 10 {
            assert!(
                r.minimal_estimation.median_min <= r.maximal_estimation.median_min,
                "min {} vs max {}",
                r.minimal_estimation.median_min,
                r.maximal_estimation.median_min
            );
        }
    }
}
