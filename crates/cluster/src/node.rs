//! Compute node model: capacity, per-job allocations, idle tracking.

use des::SimTime;
use fabric::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::job::JobId;

/// Static hardware capacity of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeResources {
    pub cores: u32,
    pub memory_mb: u64,
    pub gpus: u32,
}

impl NodeResources {
    /// Piz Daint multicore node: 2×18 cores, 128 GB (Sec. V).
    pub fn daint_mc() -> Self {
        NodeResources {
            cores: 36,
            memory_mb: 128 * 1024,
            gpus: 0,
        }
    }

    /// Piz Daint hybrid GPU node: 12 cores, 64 GB, one P100.
    pub fn daint_gpu() -> Self {
        NodeResources {
            cores: 12,
            memory_mb: 64 * 1024,
            gpus: 1,
        }
    }

    /// Ault node: 2×18-core Xeon Gold, 377 GB.
    pub fn ault() -> Self {
        NodeResources {
            cores: 36,
            memory_mb: 377 * 1024,
            gpus: 0,
        }
    }

    pub fn fits(&self, other: &NodeResources) -> bool {
        self.cores >= other.cores && self.memory_mb >= other.memory_mb && self.gpus >= other.gpus
    }
}

/// Scheduler-relevant node state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// No jobs assigned.
    Idle,
    /// At least one job, spare capacity may remain.
    Allocated,
    /// Being emptied to satisfy a reservation or maintenance.
    Draining,
    /// Unavailable.
    Down,
}

/// A compute node with live allocation bookkeeping.
#[derive(Debug, Clone)]
pub struct Node {
    pub id: NodeId,
    pub capacity: NodeResources,
    allocations: HashMap<JobId, NodeResources>,
    state: NodeState,
    /// Job holding the node exclusively (SLURM default: the whole node
    /// belongs to the job even if it requested fewer cores).
    exclusive_holder: Option<JobId>,
    /// When the node last became idle (for idle-period statistics).
    idle_since: Option<SimTime>,
}

impl Node {
    pub fn new(id: NodeId, capacity: NodeResources) -> Self {
        Node {
            id,
            capacity,
            allocations: HashMap::new(),
            state: NodeState::Idle,
            exclusive_holder: None,
            idle_since: Some(SimTime::ZERO),
        }
    }

    pub fn state(&self) -> NodeState {
        self.state
    }

    pub fn set_down(&mut self) {
        self.state = NodeState::Down;
        self.idle_since = None;
    }

    pub fn set_draining(&mut self) {
        if self.state != NodeState::Down {
            self.state = NodeState::Draining;
        }
    }

    /// Resources currently in use by jobs.
    pub fn used(&self) -> NodeResources {
        let mut used = NodeResources {
            cores: 0,
            memory_mb: 0,
            gpus: 0,
        };
        for a in self.allocations.values() {
            used.cores += a.cores;
            used.memory_mb += a.memory_mb;
            used.gpus += a.gpus;
        }
        used
    }

    /// Spare capacity.
    pub fn free(&self) -> NodeResources {
        let used = self.used();
        NodeResources {
            cores: self.capacity.cores - used.cores,
            memory_mb: self.capacity.memory_mb - used.memory_mb,
            gpus: self.capacity.gpus - used.gpus,
        }
    }

    pub fn is_idle(&self) -> bool {
        self.allocations.is_empty() && self.state == NodeState::Idle
    }

    pub fn idle_since(&self) -> Option<SimTime> {
        self.idle_since
    }

    pub fn jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.allocations.keys().copied()
    }

    pub fn job_count(&self) -> usize {
        self.allocations.len()
    }

    /// Job that holds this node exclusively, if any.
    pub fn exclusive_holder(&self) -> Option<JobId> {
        self.exclusive_holder
    }

    /// Can this node accept `req` for a job with the given sharing mode?
    /// Exclusive jobs need a completely empty node; shared jobs need spare
    /// capacity and no exclusive occupant.
    pub fn can_host(&self, req: &NodeResources, shared: bool) -> bool {
        if self.state != NodeState::Idle && self.state != NodeState::Allocated {
            return false;
        }
        if self.exclusive_holder.is_some() {
            return false;
        }
        if !shared {
            self.allocations.is_empty() && self.capacity.fits(req)
        } else {
            self.free().fits(req)
        }
    }

    /// Allocate `req` to `job`. Returns the idle period that just ended, if
    /// the node was idle (used by the monitor's ground-truth idle tracking).
    /// `exclusive` jobs keep the remaining resources unusable by others but
    /// are accounted at their *requested* size (so the memory-split and
    /// billing analyses can distinguish used from blocked-but-free).
    pub fn allocate(
        &mut self,
        job: JobId,
        req: NodeResources,
        exclusive: bool,
        now: SimTime,
    ) -> Option<SimTime> {
        debug_assert!(self.free().fits(&req), "allocation exceeds node capacity");
        debug_assert!(
            !exclusive || self.allocations.is_empty(),
            "exclusive allocation on busy node"
        );
        let idle_period = self
            .idle_since
            .take()
            .map(|since| now.saturating_sub(since));
        self.allocations.insert(job, req);
        if exclusive {
            self.exclusive_holder = Some(job);
        }
        self.state = NodeState::Allocated;
        idle_period
    }

    /// Release a job's share. Returns `true` if the node became idle.
    pub fn release(&mut self, job: JobId, now: SimTime) -> bool {
        self.allocations.remove(&job);
        if self.exclusive_holder == Some(job) {
            self.exclusive_holder = None;
        }
        if self.allocations.is_empty() {
            if self.state == NodeState::Allocated {
                self.state = NodeState::Idle;
            }
            self.idle_since = Some(now);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cores: u32, mem: u64, gpus: u32) -> NodeResources {
        NodeResources {
            cores,
            memory_mb: mem,
            gpus,
        }
    }

    #[test]
    fn presets_match_paper() {
        let mc = NodeResources::daint_mc();
        assert_eq!(mc.cores, 36);
        assert_eq!(mc.memory_mb, 128 * 1024);
        let gpu = NodeResources::daint_gpu();
        assert_eq!(gpu.cores, 12);
        assert_eq!(gpu.gpus, 1);
    }

    #[test]
    fn allocate_and_free_accounting() {
        let mut n = Node::new(NodeId(0), NodeResources::daint_mc());
        assert!(n.is_idle());
        n.allocate(
            JobId(1),
            req(32, 64 * 1024, 0),
            false,
            SimTime::from_secs(10),
        );
        assert!(!n.is_idle());
        assert_eq!(n.free(), req(4, 64 * 1024, 0));
        n.allocate(JobId(2), req(4, 1024, 0), false, SimTime::from_secs(20));
        assert_eq!(n.free(), req(0, 63 * 1024, 0));
        assert!(!n.release(JobId(1), SimTime::from_secs(30)));
        assert!(n.release(JobId(2), SimTime::from_secs(40)));
        assert!(n.is_idle());
        assert_eq!(n.idle_since(), Some(SimTime::from_secs(40)));
    }

    #[test]
    fn idle_period_reported_on_allocation() {
        let mut n = Node::new(NodeId(0), NodeResources::daint_mc());
        let period = n.allocate(JobId(1), req(1, 1, 0), false, SimTime::from_secs(300));
        assert_eq!(period, Some(SimTime::from_secs(300)));
        n.release(JobId(1), SimTime::from_secs(400));
        let period = n.allocate(JobId(2), req(1, 1, 0), false, SimTime::from_secs(460));
        assert_eq!(period, Some(SimTime::from_secs(60)));
    }

    #[test]
    fn exclusive_requires_empty_node() {
        let mut n = Node::new(NodeId(0), NodeResources::daint_mc());
        assert!(n.can_host(&req(36, 1024, 0), false));
        n.allocate(JobId(1), req(1, 1024, 0), false, SimTime::ZERO);
        assert!(!n.can_host(&req(1, 1, 0), false), "exclusive on busy node");
        assert!(n.can_host(&req(1, 1, 0), true), "shared fits in spare");
    }

    #[test]
    fn shared_bounded_by_free_capacity() {
        let mut n = Node::new(NodeId(0), NodeResources::daint_mc());
        n.allocate(JobId(1), req(30, 100 * 1024, 0), false, SimTime::ZERO);
        assert!(n.can_host(&req(6, 28 * 1024, 0), true));
        assert!(!n.can_host(&req(7, 1, 0), true));
        assert!(!n.can_host(&req(1, 29 * 1024, 0), true));
    }

    #[test]
    fn down_and_draining_reject_work() {
        let mut n = Node::new(NodeId(0), NodeResources::daint_mc());
        n.set_draining();
        assert!(!n.can_host(&req(1, 1, 0), true));
        n.set_down();
        assert!(!n.can_host(&req(1, 1, 0), true));
        assert!(!n.is_idle());
    }

    #[test]
    fn gpu_gres_tracked() {
        let mut n = Node::new(NodeId(0), NodeResources::daint_gpu());
        assert!(n.can_host(&req(1, 1024, 1), true));
        n.allocate(JobId(1), req(1, 1024, 1), false, SimTime::ZERO);
        assert!(!n.can_host(&req(1, 1024, 1), true), "single GPU taken");
        assert!(n.can_host(&req(1, 1024, 0), true));
    }
}
