//! Incrementally-maintained scheduler indexes.
//!
//! The scan scheduler (kept as [`crate::reference`]) re-derives three
//! quantities from all `n` nodes on every scheduling attempt: the placement
//! order of free nodes, the backfill shadow time, and the feasibility count.
//! This module maintains each one incrementally so a placement attempt is
//! `O(k log n)` for a `k`-node job instead of `O(n log n)`:
//!
//! * **Idle index** — per capacity class, a `BTreeSet` of placeable idle
//!   nodes ordered by the placement key `(Reverse(idle_since), node_id)`.
//!   The key is *exactly* the scan implementation's sort key, so taking the
//!   first `k` entries of a k-way class merge reproduces the scan's
//!   `select_nth + sort` prefix bit-for-bit.
//! * **Shared index** — partially-allocated, non-exclusive nodes under the
//!   same key. Allocated nodes have `idle_since = None`, which the placement
//!   key maps to `Reverse(SimTime::MAX)` — the smallest key — so shared jobs
//!   pack onto already-allocated nodes first, again exactly as the scan
//!   ordering did. Spare-capacity fit is checked lazily during the merge
//!   (capacity is three-dimensional; there is no total order to index it by).
//! * **Backfill index** — per capacity class, every member node keyed by its
//!   *raw* walltime-horizon `free_at` (`max` over its running jobs of
//!   `started_at + walltime`, `ZERO` when none). The scan sorts the *clamped*
//!   key `(free_at.max(now), id)`; clamping is a monotone transform of the
//!   time component and the id tiebreak only permutes equal times, so the
//!   k-th smallest clamped *time* equals `max(now, k-th smallest raw time)`
//!   — which is all `shadow_time` returns.
//! * **Feasibility counts** — node capacities are static, so the number of
//!   nodes fitting a request shape is a per-class member count summed over
//!   fitting classes, `O(#classes)` per query.
//!
//! The cluster publishes every allocation state change through
//! [`SchedIndex::note_allocated`] / [`SchedIndex::note_released`]. Callers
//! that mutate nodes directly (`Cluster::node_mut`, e.g. marking a node
//! down) flip a dirty bit; the next scheduling pass rebuilds from scratch,
//! so external mutation costs one `O(n log n)` rebuild instead of
//! correctness.

use crate::job::{Job, JobId, JobSpec};
use crate::node::{Node, NodeResources, NodeState};
use des::SimTime;
use fabric::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};

/// The scan scheduler's placement sort key: most-recently-freed first
/// (`idle_since = None`, i.e. allocated, maps to `MAX` and sorts before all
/// idle nodes), node id as the unique tiebreak.
pub(crate) type PlacementKey = (Reverse<SimTime>, NodeId);

fn placement_key(node: &Node) -> PlacementKey {
    (Reverse(node.idle_since().unwrap_or(SimTime::MAX)), node.id)
}

/// One distinct node capacity: static member count plus the two ordered
/// per-class structures.
struct ClassIndex {
    capacity: NodeResources,
    /// Total member nodes (static; drives `is_feasible` and the
    /// `shadow_time` fitting-count check).
    members: usize,
    /// Placeable idle members (`Node::is_idle`), placement-key order.
    idle: BTreeSet<PlacementKey>,
    /// Every member keyed by raw backfill `free_at` (see module docs).
    free_at: BTreeSet<(SimTime, NodeId)>,
}

pub(crate) struct SchedIndex {
    classes: Vec<ClassIndex>,
    /// Node index -> capacity class index.
    class_of: Vec<u32>,
    /// Partially-allocated non-exclusive nodes, placement-key order.
    shared: BTreeSet<PlacementKey>,
    /// Mirror of each node's key in `idle` (None = not in the idle set).
    idle_key: Vec<Option<PlacementKey>>,
    /// Mirror of each node's key in `shared` (None = not in the set).
    shared_key: Vec<Option<PlacementKey>>,
    /// Mirror of each node's raw `free_at` key in its class set.
    free_at: Vec<SimTime>,
    /// Set when nodes were mutated behind the index's back (`node_mut`);
    /// the next `ensure_clean` rebuilds everything.
    dirty: bool,
}

impl SchedIndex {
    pub fn new(nodes: &[Node]) -> Self {
        let mut idx = SchedIndex {
            classes: Vec::new(),
            class_of: Vec::new(),
            shared: BTreeSet::new(),
            idle_key: Vec::new(),
            shared_key: Vec::new(),
            free_at: Vec::new(),
            dirty: false,
        };
        idx.rebuild(nodes, &HashMap::new());
        idx
    }

    pub fn mark_dirty(&mut self) {
        self.dirty = true;
    }

    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Rebuild every structure from the authoritative node/job state.
    pub fn rebuild(&mut self, nodes: &[Node], jobs: &HashMap<JobId, Job>) {
        self.classes.clear();
        self.shared.clear();
        self.class_of = vec![0; nodes.len()];
        self.idle_key = vec![None; nodes.len()];
        self.shared_key = vec![None; nodes.len()];
        self.free_at = vec![SimTime::ZERO; nodes.len()];
        for node in nodes {
            let i = node.id.0 as usize;
            let class = match self
                .classes
                .iter()
                .position(|c| c.capacity == node.capacity)
            {
                Some(c) => c,
                None => {
                    self.classes.push(ClassIndex {
                        capacity: node.capacity,
                        members: 0,
                        idle: BTreeSet::new(),
                        free_at: BTreeSet::new(),
                    });
                    self.classes.len() - 1
                }
            };
            self.class_of[i] = class as u32;
            self.classes[class].members += 1;
            let free_at = node
                .jobs()
                .filter_map(|jid| jobs.get(&jid))
                .filter_map(|j| j.started_at.map(|s| s + j.spec.walltime))
                .max()
                .unwrap_or(SimTime::ZERO);
            self.free_at[i] = free_at;
            self.classes[class].free_at.insert((free_at, node.id));
            if node.is_idle() {
                let key = placement_key(node);
                self.idle_key[i] = Some(key);
                self.classes[class].idle.insert(key);
            } else if Self::shared_eligible(node) {
                let key = placement_key(node);
                self.shared_key[i] = Some(key);
                self.shared.insert(key);
            }
        }
        self.dirty = false;
    }

    /// Membership criterion for the shared (partially-allocated) index:
    /// exactly the nodes `can_host(_, shared=true)` could accept beyond the
    /// idle set, minus the per-request spare-fit check applied lazily.
    fn shared_eligible(node: &Node) -> bool {
        node.job_count() > 0
            && node.exclusive_holder().is_none()
            && node.state() == NodeState::Allocated
    }

    /// Publish a job placement on `node` (call after `Node::allocate`).
    /// `walltime_end` is `now + walltime`, the backfill horizon the new job
    /// contributes.
    pub fn note_allocated(&mut self, node: &Node, walltime_end: SimTime) {
        let i = node.id.0 as usize;
        let class = self.class_of[i] as usize;
        if let Some(key) = self.idle_key[i].take() {
            self.classes[class].idle.remove(&key);
        }
        if Self::shared_eligible(node) && self.shared_key[i].is_none() {
            let key = placement_key(node);
            self.shared_key[i] = Some(key);
            self.shared.insert(key);
        }
        let old = self.free_at[i];
        let new = old.max(walltime_end);
        if new != old {
            self.classes[class].free_at.remove(&(old, node.id));
            self.classes[class].free_at.insert((new, node.id));
            self.free_at[i] = new;
        }
    }

    /// Publish a job release on `node` (call after `Node::release`).
    /// `free_at` is the recomputed raw walltime horizon over the node's
    /// remaining jobs (`ZERO` when none).
    pub fn note_released(&mut self, node: &Node, free_at: SimTime) {
        let i = node.id.0 as usize;
        let class = self.class_of[i] as usize;
        if !Self::shared_eligible(node) {
            if let Some(key) = self.shared_key[i].take() {
                self.shared.remove(&key);
            }
        }
        if node.is_idle() && self.idle_key[i].is_none() {
            let key = placement_key(node);
            self.idle_key[i] = Some(key);
            self.classes[class].idle.insert(key);
        }
        let old = self.free_at[i];
        if free_at != old {
            self.classes[class].free_at.remove(&(old, node.id));
            self.classes[class].free_at.insert((free_at, node.id));
            self.free_at[i] = free_at;
        }
    }

    /// Number of nodes whose static capacity fits `req` (any state).
    pub fn fitting_count(&self, req: &NodeResources) -> usize {
        self.classes
            .iter()
            .filter(|c| c.capacity.fits(req))
            .map(|c| c.members)
            .sum()
    }

    /// Find nodes for `spec` right now: the indexed replacement for the
    /// scan `find_nodes`, returning the identical node list in the
    /// identical order, or `None` if fewer than `spec.nodes` candidates
    /// exist.
    pub fn select(&self, nodes: &[Node], spec: &JobSpec) -> Option<Vec<NodeId>> {
        debug_assert!(!self.dirty, "select on a dirty index");
        let k = spec.nodes as usize;
        let req = &spec.per_node;

        // Fast path: exclusive request on a cluster where one class fits —
        // the merged order is just that class's idle set.
        if !spec.shared {
            let mut fitting = self.classes.iter().filter(|c| c.capacity.fits(req));
            if let (Some(class), None) = (fitting.next(), fitting.next()) {
                if class.idle.len() < k {
                    return None;
                }
                return Some(class.idle.iter().take(k).map(|&(_, id)| id).collect());
            }
        }

        // General path: k-way merge over every eligible ordered source.
        let mut sources: Vec<Box<dyn Iterator<Item = PlacementKey> + '_>> = Vec::new();
        if spec.shared {
            sources.push(Box::new(
                self.shared
                    .iter()
                    .copied()
                    .filter(|&(_, nid)| nodes[nid.0 as usize].free().fits(req)),
            ));
        }
        for class in self.classes.iter().filter(|c| c.capacity.fits(req)) {
            sources.push(Box::new(class.idle.iter().copied()));
        }
        let mut its: Vec<_> = sources.into_iter().map(Iterator::peekable).collect();
        let mut picked: Vec<NodeId> = Vec::with_capacity(k);
        while picked.len() < k {
            let mut best: Option<(PlacementKey, usize)> = None;
            for (s, it) in its.iter_mut().enumerate() {
                if let Some(&key) = it.peek() {
                    if best.is_none_or(|(b, _)| key < b) {
                        best = Some((key, s));
                    }
                }
            }
            match best {
                Some((key, s)) => {
                    its[s].next();
                    picked.push(key.1);
                }
                None => return None, // fewer than k candidates exist
            }
        }
        Some(picked)
    }

    /// Earliest time the `head` job could start assuming running jobs end at
    /// their walltime limit: the k-th smallest clamped per-node free time,
    /// computed as `max(now, k-th smallest raw free_at)` over fitting
    /// classes (see the module docs for why the clamp commutes with the
    /// order statistic).
    pub fn shadow_time(&self, head: &JobSpec, now: SimTime) -> SimTime {
        debug_assert!(!self.dirty, "shadow_time on a dirty index");
        let k = head.nodes as usize;
        assert!(k > 0, "shadow_time of a zero-node job");
        if self.fitting_count(&head.per_node) < k {
            return SimTime::MAX;
        }
        let mut its: Vec<_> = self
            .classes
            .iter()
            .filter(|c| c.capacity.fits(&head.per_node))
            .map(|c| c.free_at.iter().peekable())
            .collect();
        let mut kth = SimTime::ZERO;
        for _ in 0..k {
            let (_, s) = its
                .iter_mut()
                .enumerate()
                .filter_map(|(s, it)| it.peek().map(|&&key| (key, s)))
                .min()
                .expect("fitting_count >= k guarantees k entries");
            kth = its[s].next().expect("peeked").0;
        }
        kth.max(now)
    }
}
