//! # cluster — SLURM-like batch system substrate
//!
//! Models the aggregated HPC system the paper targets: nodes with cores,
//! memory and GPUs; a FCFS + EASY-backfill scheduler with exclusive and
//! shared (`--shared` / oversubscription partition) allocations and GRES
//! tracking for GPUs; a workload trace generator calibrated to the Piz Daint
//! March-2022 statistics of Fig. 1; a 2-minute sampling monitor reproducing
//! the paper's idle-CPU / free-memory / idle-period measurements; and a
//! core-hour billing ledger used by the Fig. 10 utilization comparison.

/// This crate's version, folded into the sweep result cache's engine salt:
/// scheduler/trace semantics changes ship as version bumps, which must
/// invalidate memoized simulation results.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

pub mod billing;
pub(crate) mod index;
pub mod job;
pub mod monitor;
pub mod node;
/// The pre-index scan scheduler, kept verbatim as a correctness oracle for
/// property tests and a like-for-like baseline for the `cluster_sched`
/// bench (`--features oracle`).
#[cfg(any(test, feature = "oracle"))]
pub mod reference;
pub mod scheduler;
pub mod trace;

#[cfg(test)]
mod oracle_tests;

pub use billing::{BillingLedger, BillingPolicy};
pub use fabric::NodeId;
pub use job::{Job, JobId, JobSpec, JobState};
pub use monitor::{IdlePeriodStats, MonitorReport, UtilizationMonitor};
pub use node::{Node, NodeResources, NodeState};
pub use scheduler::{Cluster, SchedulerError};
pub use trace::{simulate_trace, simulate_trace_in, TraceOutcome, TraceProfile};
