//! Batch job specification and lifecycle.

use crate::node::NodeResources;
use des::SimTime;
use fabric::NodeId;
use serde::{Deserialize, Serialize};

/// Unique job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// What the user asked SLURM for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Number of nodes.
    pub nodes: u32,
    /// Per-node resource request.
    pub per_node: NodeResources,
    /// Requested wall-clock limit (used for backfill reservations).
    pub walltime: SimTime,
    /// Opt-in to node sharing (the paper's disaggregation opt-in policy,
    /// Sec. III-E: SLURM `--shared` flag or the designated partition).
    pub shared: bool,
    /// Human-readable tag (application name) used by the co-location history.
    pub tag: String,
}

impl JobSpec {
    /// Convenience constructor for an exclusive job.
    pub fn exclusive(nodes: u32, per_node: NodeResources, walltime: SimTime, tag: &str) -> Self {
        JobSpec {
            nodes,
            per_node,
            walltime,
            shared: false,
            tag: tag.to_string(),
        }
    }

    /// Convenience constructor for a shared (co-location-eligible) job.
    pub fn shared(nodes: u32, per_node: NodeResources, walltime: SimTime, tag: &str) -> Self {
        JobSpec {
            nodes,
            per_node,
            walltime,
            shared: true,
            tag: tag.to_string(),
        }
    }

    pub fn total_cores(&self) -> u64 {
        u64::from(self.nodes) * u64::from(self.per_node.cores)
    }
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    Pending,
    Running,
    Completed,
    Cancelled,
}

/// A job tracked by the scheduler.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: JobId,
    pub spec: JobSpec,
    pub state: JobState,
    pub submitted_at: SimTime,
    pub started_at: Option<SimTime>,
    pub finished_at: Option<SimTime>,
    /// Nodes assigned while running.
    pub assigned: Vec<NodeId>,
    /// Actual runtime (set by the trace; may be shorter than walltime).
    pub actual_runtime: SimTime,
}

impl Job {
    pub fn new(id: JobId, spec: JobSpec, submitted_at: SimTime, actual_runtime: SimTime) -> Self {
        Job {
            id,
            spec,
            state: JobState::Pending,
            submitted_at,
            started_at: None,
            finished_at: None,
            assigned: Vec::new(),
            actual_runtime,
        }
    }

    /// Queueing delay, if started.
    pub fn wait_time(&self) -> Option<SimTime> {
        self.started_at.map(|s| s.saturating_sub(self.submitted_at))
    }

    /// Wall-clock duration, if finished.
    pub fn runtime(&self) -> Option<SimTime> {
        match (self.started_at, self.finished_at) {
            (Some(s), Some(f)) => Some(f.saturating_sub(s)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::exclusive(
            2,
            NodeResources::daint_mc(),
            SimTime::from_hours(1),
            "lulesh",
        )
    }

    #[test]
    fn total_cores() {
        assert_eq!(spec().total_cores(), 72);
    }

    #[test]
    fn shared_flag() {
        assert!(!spec().shared);
        let s = JobSpec::shared(1, NodeResources::daint_mc(), SimTime::from_mins(5), "nas");
        assert!(s.shared);
    }

    #[test]
    fn wait_and_runtime() {
        let mut j = Job::new(
            JobId(1),
            spec(),
            SimTime::from_secs(100),
            SimTime::from_secs(50),
        );
        assert_eq!(j.wait_time(), None);
        assert_eq!(j.runtime(), None);
        j.started_at = Some(SimTime::from_secs(160));
        j.finished_at = Some(SimTime::from_secs(210));
        assert_eq!(j.wait_time(), Some(SimTime::from_secs(60)));
        assert_eq!(j.runtime(), Some(SimTime::from_secs(50)));
    }
}
