//! Property tests of the batch scheduler: conservation, backfill safety, and
//! lifecycle invariants under random job streams.

use cluster::{Cluster, JobId, JobSpec, JobState, NodeResources};
use des::SimTime;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = (JobSpec, u64)> {
    (
        1u32..5,          // nodes
        1u32..=36,        // cores per node
        1u64..128 * 1024, // memory
        1u64..120,        // walltime minutes
        any::<bool>(),    // shared
        1u64..100,        // actual runtime minutes
    )
        .prop_map(|(nodes, cores, mem, wall, shared, run)| {
            let per_node = NodeResources {
                cores,
                memory_mb: mem,
                gpus: 0,
            };
            let wall_t = SimTime::from_mins(wall);
            let spec = if shared {
                JobSpec::shared(nodes, per_node, wall_t, "p")
            } else {
                JobSpec::exclusive(nodes, per_node, wall_t, "p")
            };
            (spec, run)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_lifecycle_conserves_resources(
        jobs in prop::collection::vec(arb_spec(), 1..25),
    ) {
        let mut c = Cluster::homogeneous(6, NodeResources::daint_mc());
        let mut submitted: Vec<JobId> = Vec::new();
        for (i, (spec, run)) in jobs.into_iter().enumerate() {
            let now = SimTime::from_secs(i as u64 * 30);
            submitted.push(c.submit(spec, SimTime::from_mins(run), now));
            c.try_schedule(now);
            // Nodes never oversubscribed at any point.
            for node in c.nodes() {
                let used = node.used();
                prop_assert!(used.cores <= node.capacity.cores);
                prop_assert!(used.memory_mb <= node.capacity.memory_mb);
            }
            // Retire whatever completes.
            while let Some((when, id)) = c.next_completion() {
                if when <= now {
                    c.finish(id, now).unwrap();
                } else {
                    break;
                }
            }
        }
        // Drain everything.
        let mut t = SimTime::from_hours(300);
        loop {
            c.try_schedule(t);
            match c.next_completion() {
                Some((when, id)) => {
                    t = t.max(when);
                    c.finish(id, t).unwrap();
                }
                None => break,
            }
        }
        // Every node is idle again; every job reached a terminal state.
        prop_assert_eq!(c.idle_node_count(), 6);
        for id in submitted {
            let job = c.job(id).unwrap();
            prop_assert!(
                matches!(job.state, JobState::Completed | JobState::Cancelled),
                "job {:?} ended as {:?}", id, job.state
            );
        }
    }

    #[test]
    fn started_jobs_get_exactly_requested_nodes(
        jobs in prop::collection::vec(arb_spec(), 1..15),
    ) {
        let mut c = Cluster::homogeneous(8, NodeResources::daint_mc());
        for (spec, run) in jobs {
            c.submit(spec, SimTime::from_mins(run), SimTime::ZERO);
        }
        let (started, _) = c.try_schedule(SimTime::ZERO);
        for id in started {
            let job = c.job(id).unwrap();
            prop_assert_eq!(job.assigned.len(), job.spec.nodes as usize);
            // Distinct nodes.
            let mut nodes = job.assigned.clone();
            nodes.sort();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), job.spec.nodes as usize);
        }
    }

    #[test]
    fn backfill_never_starves_the_head(
        small_jobs in prop::collection::vec((1u32..3, 1u64..30), 0..10),
    ) {
        let mut c = Cluster::homogeneous(4, NodeResources::daint_mc());
        // Occupy 3 nodes until t=100min.
        let blocker = c.submit(
            JobSpec::exclusive(3, NodeResources::daint_mc(), SimTime::from_mins(100), "b"),
            SimTime::from_mins(100),
            SimTime::ZERO,
        );
        // Head needs all 4 nodes.
        let head = c.submit(
            JobSpec::exclusive(4, NodeResources::daint_mc(), SimTime::from_mins(10), "head"),
            SimTime::from_mins(10),
            SimTime::ZERO,
        );
        for (nodes, mins) in small_jobs {
            c.submit(
                JobSpec::exclusive(nodes, NodeResources::daint_mc(), SimTime::from_mins(mins), "s"),
                SimTime::from_mins(mins),
                SimTime::ZERO,
            );
        }
        c.try_schedule(SimTime::ZERO);
        // Whatever was backfilled, at t=100 the blocker ends and the head
        // must start no later than the backfill window promised.
        c.finish(blocker, SimTime::from_mins(100)).unwrap();
        // Finish any backfilled jobs that are due.
        while let Some((when, id)) = c.next_completion() {
            if when <= SimTime::from_mins(100) {
                c.finish(id, SimTime::from_mins(100)).unwrap();
            } else {
                break;
            }
        }
        let (started, _) = c.try_schedule(SimTime::from_mins(100));
        prop_assert!(
            started.contains(&head),
            "head must start exactly at the reservation"
        );
    }
}
